// Deterministic serialization of a complete PicResult — the payload the
// sweep result cache (src/sweep) persists so a cached configuration
// rehydrates without re-simulation.
//
// The format is line-oriented text: fixed-order "key=value" scalars
// (doubles in std::to_chars shortest round-trip form, so parsing restores
// the exact bits), fixed-column rows for the per-iteration records and
// per-rank machine reports, and length-prefixed raw blocks for the embedded
// exports (analysis report, metrics JSON/CSV, timeline CSV), which
// round-trip verbatim. Everything in the PicResult is covered, including
// the per-rank clocks, per-phase traffic counters, fault tallies and
// transport link stats the benches aggregate over — a rehydrated result is
// indistinguishable from a fresh one field for field. The only
// schedule-dependent member, phase_wall_us, is stored too: it replays the
// wall measurements of the run that produced the entry (documented as
// excluded from byte-identity checks, see result.hpp).
//
// parse_result is strict: any structural mismatch, bad number, or trailing
// garbage throws std::runtime_error. The cache treats a throw as a corrupt
// entry and falls back to recomputation.
#pragma once

#include <string>
#include <string_view>

#include "pic/result.hpp"

namespace picpar::pic {

/// Serialize every field of `r` into the deterministic text format.
/// Round trip is exact: serialize_result(parse_result(s)) == s.
std::string serialize_result(const PicResult& r);

/// Inverse of serialize_result. Throws std::runtime_error on malformed
/// input (truncation, bad numbers, version mismatch, trailing bytes).
PicResult parse_result(std::string_view text);

}  // namespace picpar::pic
