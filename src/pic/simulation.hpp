// The paper's parallel PIC algorithm: direct Lagrangian particle movement
// with independent partitioning of the particle and mesh arrays, dynamic
// alignment via space-filling-curve indexing, and runtime redistribution.
//
// run_pic() builds the simulated machine, runs the SPMD program on every
// rank and aggregates per-iteration records. Physics (deposition, field
// solve, push) executes numerically; time is virtual, charged through the
// two-level cost model.
#pragma once

#include <string>
#include <vector>

#include "pic/config.hpp"
#include "pic/result.hpp"

namespace picpar::pic {

/// Run the full simulation described by `params`. Deterministic for a
/// given configuration (same seeds, same schedule, same virtual clocks).
PicResult run_pic(const PicParams& params);

/// Parse a crash schedule spec "rank@vtime[,rank@vtime...]" (e.g.
/// "2@0.5,5@1.25") into fault-model crash points. Empty string => empty
/// schedule; malformed entries throw std::invalid_argument.
std::vector<sim::CrashPoint> parse_crash_schedule(const std::string& spec);

/// Fold the PICPAR_CRASH_* environment variables into a fault config:
/// PICPAR_CRASH_RANKS ("rank@vtime,..."), PICPAR_CRASH_PROB,
/// PICPAR_CRASH_MAX_T (per-rank crash probability and latest crash time),
/// PICPAR_CRASH_LEASE (failure-detection lease seconds). Unset variables
/// leave the corresponding fields untouched.
void apply_crash_env(sim::FaultConfig& cfg);

}  // namespace picpar::pic
