// The paper's parallel PIC algorithm: direct Lagrangian particle movement
// with independent partitioning of the particle and mesh arrays, dynamic
// alignment via space-filling-curve indexing, and runtime redistribution.
//
// run_pic() builds the simulated machine, runs the SPMD program on every
// rank and aggregates per-iteration records. Physics (deposition, field
// solve, push) executes numerically; time is virtual, charged through the
// two-level cost model.
#pragma once

#include "pic/config.hpp"
#include "pic/result.hpp"

namespace picpar::pic {

/// Run the full simulation described by `params`. Deterministic for a
/// given configuration (same seeds, same schedule, same virtual clocks).
PicResult run_pic(const PicParams& params);

}  // namespace picpar::pic
