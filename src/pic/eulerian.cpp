#include "pic/eulerian.hpp"

#include <algorithm>

#include "core/ghost_exchange.hpp"
#include "mesh/local_grid.hpp"
#include "mesh/maxwell.hpp"
#include "particles/interpolate.hpp"
#include "particles/pusher.hpp"
#include "sim/comm.hpp"

namespace picpar::pic {

using core::GhostExchange;
using mesh::FieldState;
using mesh::GridPartition;
using mesh::LocalGrid;
using particles::ParticleArray;
using particles::ParticleRec;
using sim::Comm;
using sim::Phase;

namespace {
GridPartition make_partition(const PicParams& params) {
  if (params.grid_decomp == GridDecomp::kBlock)
    return GridPartition::block_auto(params.grid, params.nranks);
  const auto curve =
      sfc::make_curve(params.curve, params.grid.nx, params.grid.ny);
  return GridPartition::curve(params.grid, params.nranks, *curve);
}
}  // namespace

std::vector<std::size_t> eulerian_particle_counts(const PicParams& params) {
  const auto part = make_partition(params);
  const auto global = particles::generate(params.dist, params.grid, params.init);
  std::vector<std::size_t> counts(static_cast<std::size_t>(params.nranks), 0);
  for (std::size_t i = 0; i < global.size(); ++i) {
    const auto cell = params.grid.cell_of(global.x[i], global.y[i]);
    ++counts[static_cast<std::size_t>(part.owner(cell))];
  }
  return counts;
}

PicResult run_eulerian(const PicParams& params) {
  if (params.init.total == 0)
    throw std::invalid_argument("run_eulerian: init.total must be > 0");

  const mesh::GridDesc grid = params.grid;
  const GridPartition part = make_partition(params);
  const ParticleArray global =
      particles::generate(params.dist, grid, params.init);
  const double dt =
      params.dt > 0.0 ? params.dt : mesh::MaxwellSolver::max_dt(grid);
  const double delta = params.machine.delta;
  const PhaseCosts& pc = params.costs;
  const double inv_cell = 1.0 / (grid.dx() * grid.dy());

  const auto iters_sz = static_cast<std::size_t>(std::max(params.iterations, 1));
  std::vector<double> clock_end(
      static_cast<std::size_t>(params.nranks) * iters_sz, 0.0);
  std::vector<double> field_energy(static_cast<std::size_t>(params.nranks), 0.0);
  std::vector<double> kinetic(static_cast<std::size_t>(params.nranks), 0.0);

  auto program = [&](Comm& comm) {
    const int rank = comm.rank();
    LocalGrid lg(part, rank);
    FieldState f(lg);
    mesh::MaxwellSolver maxwell(lg, dt);
    GhostExchange ghosts(lg, params.dedup);

    // Eulerian assignment: every rank filters the global population for
    // particles whose cell it owns (deterministic, no communication).
    ParticleArray mine(global.charge(), global.mass());
    for (std::size_t i = 0; i < global.size(); ++i) {
      const auto cell = grid.cell_of(global.x[i], global.y[i]);
      if (part.owner(cell) == rank) mine.push_back(global.rec(i));
    }
    const double q = mine.charge();
    const double mass = mine.mass();

    for (int iter = 0; iter < params.iterations; ++iter) {
      // ---- Scatter ----
      comm.set_phase(Phase::kScatter);
      ghosts.begin_iteration();
      f.clear_sources();
      const std::size_t n = mine.size();
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        const double gamma = mine.gamma(i);
        const double qv = q * inv_cell;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          const auto l = lg.local_of(st.node[k]);
          if (l != mesh::kNoLocal && l < lg.owned()) {
            f.jx[l] += w * qv * mine.ux[i] / gamma;
            f.jy[l] += w * qv * mine.uy[i] / gamma;
            f.jz[l] += w * qv * mine.uz[i] / gamma;
            f.rho[l] += w * qv;
          } else {
            double* slot = ghosts.deposit_slot(st.node[k]);
            slot[0] += w * qv * mine.ux[i] / gamma;
            slot[1] += w * qv * mine.uy[i] / gamma;
            slot[2] += w * qv * mine.uz[i] / gamma;
            slot[3] += w * qv;
          }
        }
      }
      comm.charge(static_cast<double>(4 * n) * pc.scatter_per_vertex * delta);
      ghosts.flush_scatter(comm, f);

      // ---- Field solve ----
      comm.set_phase(Phase::kFieldSolve);
      if (params.solver == FieldSolveKind::kMaxwell) {
        maxwell.step(comm, f);
        comm.charge(static_cast<double>(lg.owned()) * pc.field_per_node *
                    delta);
      }

      // ---- Gather ----
      comm.set_phase(Phase::kGather);
      ghosts.fetch_fields(comm, f);
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        // picpar-lint: allow(float-reduction-order) fixed 4-point stencil
        particles::LocalFields lf;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          const auto l = lg.local_of(st.node[k]);
          if (l != mesh::kNoLocal && l < lg.owned()) {
            lf.ex += w * f.ex[l];
            lf.ey += w * f.ey[l];
            lf.ez += w * f.ez[l];
            lf.bx += w * f.bx[l];
            lf.by += w * f.by[l];
            lf.bz += w * f.bz[l];
          } else {
            const double* s = ghosts.field_slot(st.node[k]);
            lf.ex += w * s[0];
            lf.ey += w * s[1];
            lf.ez += w * s[2];
            lf.bx += w * s[3];
            lf.by += w * s[4];
            lf.bz += w * s[5];
          }
        }
        particles::boris_kick(q, mass, dt, lf, mine.ux[i], mine.uy[i],
                              mine.uz[i]);
      }
      comm.charge(static_cast<double>(4 * n) * pc.gather_per_vertex * delta);

      // ---- Push + migration ----
      comm.set_phase(Phase::kPush);
      std::vector<std::vector<ParticleRec>> migrate(
          static_cast<std::size_t>(comm.size()));
      for (std::size_t i = 0; i < mine.size();) {
        particles::advance_position(grid, mine, i, dt);
        const auto cell = grid.cell_of(mine.x[i], mine.y[i]);
        const int o = part.owner(cell);
        if (o != rank) {
          migrate[static_cast<std::size_t>(o)].push_back(mine.rec(i));
          mine.swap_remove(i);
        } else {
          ++i;
        }
      }
      comm.charge(static_cast<double>(n) * pc.push_per_particle * delta);
      auto arrived = comm.all_to_many(std::move(migrate));
      for (const auto& buf : arrived)
        for (const auto& r : buf) mine.push_back(r);
      comm.set_phase(Phase::kOther);

      clock_end[static_cast<std::size_t>(rank) * iters_sz +
                static_cast<std::size_t>(iter)] = comm.clock();
    }

    field_energy[static_cast<std::size_t>(rank)] = f.energy(lg);
    kinetic[static_cast<std::size_t>(rank)] = mine.kinetic_energy();
  };

  sim::Machine machine(params.nranks, params.machine);
  auto run = machine.run(program);

  PicResult result;
  result.machine = std::move(run);
  result.total_seconds = result.machine.makespan();
  result.compute_seconds = result.machine.max_compute();
  result.iters.resize(static_cast<std::size_t>(params.iterations));
  double prev = 0.0;
  for (int i = 0; i < params.iterations; ++i) {
    double end = 0.0;
    for (int r = 0; r < params.nranks; ++r)
      end = std::max(end, clock_end[static_cast<std::size_t>(r) * iters_sz +
                                    static_cast<std::size_t>(i)]);
    auto& rec = result.iters[static_cast<std::size_t>(i)];
    rec.iter = i;
    rec.exec_seconds = end - prev;
    rec.loop_seconds = rec.exec_seconds;
    prev = end;
  }
  // Rank-order merge of per-rank partials: a fixed, mode-independent
  // summation order by construction.
  // picpar-lint: allow(float-reduction-order) rank-order merge
  for (double e : field_energy) result.field_energy += e;
  // picpar-lint: allow(float-reduction-order) rank-order merge
  for (double k : kinetic) result.kinetic_energy += k;
  return result;
}

}  // namespace picpar::pic
