#include "pic/result_io.hpp"

#include <charconv>
#include <stdexcept>
#include <utility>

#include "sim/comm_stats.hpp"
#include "trace/metrics.hpp"

namespace picpar::pic {

namespace {

using trace::detail::append_num;

constexpr std::string_view kMagic = "picpar-result v1";

// ---------------------------------------------------------------------------
// Writing

void put(std::string& out, const char* key, double v) {
  out += key;
  out += '=';
  append_num(out, v);
  out += '\n';
}

void put(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += '=';
  append_num(out, v);
  out += '\n';
}

void put(std::string& out, const char* key, std::int64_t v) {
  out += key;
  out += '=';
  append_num(out, v);
  out += '\n';
}

void put(std::string& out, const char* key, int v) {
  put(out, key, static_cast<std::int64_t>(v));
}

void put(std::string& out, const char* key, bool v) {
  out += key;
  out += '=';
  out += v ? '1' : '0';
  out += '\n';
}

/// Length-prefixed raw block: "key:<nbytes>\n<bytes>\n". The payload is
/// copied verbatim, so embedded newlines and arbitrary text round-trip.
void put_blob(std::string& out, const char* key, const std::string& v) {
  out += key;
  out += ':';
  append_num(out, static_cast<std::uint64_t>(v.size()));
  out += '\n';
  out += v;
  out += '\n';
}

void sep(std::string& out) { out += ','; }

// ---------------------------------------------------------------------------
// Reading

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("parse_result: malformed input: ") +
                           what);
}

struct Reader {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }

  std::string_view line() {
    if (done()) fail("unexpected end of input");
    const auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) fail("unterminated line");
    std::string_view l = text.substr(pos, nl - pos);
    pos = nl + 1;
    return l;
  }

  /// "key=value" line; returns the value part.
  std::string_view value(std::string_view key) {
    std::string_view l = line();
    if (l.substr(0, key.size()) != key || l.size() == key.size() ||
        l[key.size()] != '=')
      fail("unexpected key");
    return l.substr(key.size() + 1);
  }

  /// "key:<n>\n<n raw bytes>\n" block; returns the raw bytes.
  std::string blob(std::string_view key) {
    std::string_view l = line();
    if (l.substr(0, key.size()) != key || l.size() == key.size() ||
        l[key.size()] != ':')
      fail("unexpected blob key");
    std::uint64_t n = 0;
    const auto lenstr = l.substr(key.size() + 1);
    const auto r =
        std::from_chars(lenstr.data(), lenstr.data() + lenstr.size(), n);
    if (r.ec != std::errc{} || r.ptr != lenstr.data() + lenstr.size())
      fail("bad blob length");
    if (text.size() - pos < n + 1) fail("truncated blob");
    std::string v(text.substr(pos, static_cast<std::size_t>(n)));
    pos += static_cast<std::size_t>(n);
    if (text[pos] != '\n') fail("unterminated blob");
    ++pos;
    return v;
  }
};

template <typename T>
T num(std::string_view s) {
  T v{};
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) fail("bad number");
  return v;
}

bool flag(std::string_view s) {
  if (s == "1") return true;
  if (s == "0") return false;
  fail("bad flag");
}

/// Comma-field cursor over one row line.
struct Row {
  std::string_view line;
  std::size_t pos = 0;

  std::string_view field() {
    if (pos > line.size()) fail("too few row fields");
    const auto end = line.find(',', pos);
    std::string_view f = end == std::string_view::npos
                             ? line.substr(pos)
                             : line.substr(pos, end - pos);
    pos = end == std::string_view::npos ? line.size() + 1 : end + 1;
    return f;
  }
  void end() const {
    if (pos <= line.size()) fail("too many row fields");
  }
};

}  // namespace

std::string serialize_result(const PicResult& r) {
  std::string out;
  out.reserve(4096 + r.iters.size() * 96 + r.machine.ranks.size() * 512 +
              r.metrics_json.size() + r.metrics_csv.size() +
              r.timeline_csv.size() + r.analysis_report.size());
  out += kMagic;
  out += '\n';

  put(out, "total_seconds", r.total_seconds);
  put(out, "compute_seconds", r.compute_seconds);
  put(out, "redistributions", r.redistributions);
  put(out, "redist_seconds_total", r.redist_seconds_total);
  put(out, "initial_distribution_seconds", r.initial_distribution_seconds);
  put(out, "recoveries", r.recoveries);
  put(out, "violation_iterations", r.violation_iterations);
  put(out, "initial_particles", r.initial_particles);
  put(out, "final_particles", r.final_particles);
  put(out, "emitted_particles", r.emitted_particles);
  put(out, "absorbed_particles", r.absorbed_particles);
  put(out, "crash_count", r.crash_count);
  put(out, "crash_recoveries", r.crash_recoveries);
  put(out, "final_ranks", r.final_ranks);
  put(out, "mttr_seconds_total", r.mttr_seconds_total);
  put(out, "crash_lost_particles", r.crash_lost_particles);
  put(out, "crash_restored_particles", r.crash_restored_particles);
  put(out, "final_imbalance", r.final_imbalance);
  put(out, "analysis_findings", r.analysis_findings);
  put(out, "hb_fingerprint", r.hb_fingerprint);
  put(out, "determinism_audit", r.determinism_audit);
  put(out, "traced", r.traced);
  put(out, "trace_events", r.trace_events);
  put(out, "field_energy", r.field_energy);
  put(out, "kinetic_energy", r.kinetic_energy);
  put(out, "total_charge", r.total_charge);

  out += "phase_wall_us=";
  for (std::size_t i = 0; i < r.phase_wall_us.size(); ++i) {
    if (i != 0) sep(out);
    append_num(out, r.phase_wall_us[i]);
  }
  out += '\n';

  put(out, "iters", static_cast<std::uint64_t>(r.iters.size()));
  for (const IterRecord& it : r.iters) {
    append_num(out, static_cast<std::int64_t>(it.iter));
    sep(out);
    append_num(out, it.exec_seconds);
    sep(out);
    append_num(out, it.loop_seconds);
    sep(out);
    append_num(out, it.scatter_max_sent_bytes);
    sep(out);
    append_num(out, it.scatter_max_recv_bytes);
    sep(out);
    append_num(out, it.scatter_max_sent_msgs);
    sep(out);
    append_num(out, it.scatter_max_recv_msgs);
    sep(out);
    append_num(out, it.max_ghost_entries);
    sep(out);
    out += it.redistributed ? '1' : '0';
    sep(out);
    append_num(out, it.redist_seconds);
    sep(out);
    append_num(out, it.redist_particles_moved);
    sep(out);
    append_num(out, std::uint64_t{it.violation_mask});
    sep(out);
    out += it.recovered ? '1' : '0';
    sep(out);
    out += it.crash_recovered ? '1' : '0';
    out += '\n';
  }

  put(out, "energy", static_cast<std::uint64_t>(r.energy_history.size()));
  for (const EnergySample& e : r.energy_history) {
    append_num(out, static_cast<std::int64_t>(e.iter));
    sep(out);
    append_num(out, e.field);
    sep(out);
    append_num(out, e.kinetic);
    out += '\n';
  }

  put(out, "machine.epochs", r.machine.epochs);
  put(out, "machine.crashes",
      static_cast<std::uint64_t>(r.machine.crashes.size()));
  for (const sim::CrashRecord& c : r.machine.crashes) {
    append_num(out, static_cast<std::int64_t>(c.rank));
    sep(out);
    append_num(out, c.vtime);
    out += '\n';
  }

  put(out, "machine.ranks",
      static_cast<std::uint64_t>(r.machine.ranks.size()));
  for (const sim::RankReport& rr : r.machine.ranks) {
    out += "rank=";
    append_num(out, static_cast<std::int64_t>(rr.rank));
    sep(out);
    append_num(out, rr.clock);
    sep(out);
    out += rr.crashed ? '1' : '0';
    sep(out);
    append_num(out, rr.crash_vtime);
    sep(out);
    append_num(out, static_cast<std::uint64_t>(rr.links.size()));
    out += '\n';
    out += "stats=";
    for (int p = 0; p < sim::kNumPhases; ++p) {
      const auto& pc = rr.stats.phase(static_cast<sim::Phase>(p));
      if (p != 0) sep(out);
      append_num(out, pc.msgs_sent);
      sep(out);
      append_num(out, pc.bytes_sent);
      sep(out);
      append_num(out, pc.msgs_recv);
      sep(out);
      append_num(out, pc.bytes_recv);
      sep(out);
      append_num(out, pc.comm_seconds);
      sep(out);
      append_num(out, pc.compute_seconds);
    }
    out += '\n';
    out += "faults=";
    append_num(out, rr.faults.transient_slowdowns);
    sep(out);
    append_num(out, rr.faults.jittered_messages);
    sep(out);
    append_num(out, rr.faults.corrupted_deliveries);
    sep(out);
    append_num(out, rr.faults.duplicated_messages);
    sep(out);
    append_num(out, rr.faults.reordered_messages);
    sep(out);
    append_num(out, rr.faults.memory_faults);
    sep(out);
    append_num(out, rr.faults.crashes);
    out += '\n';
    out += "links=";
    for (std::size_t l = 0; l < rr.links.size(); ++l) {
      if (l != 0) sep(out);
      append_num(out, rr.links[l].retries);
      sep(out);
      append_num(out, rr.links[l].dup_discards);
      sep(out);
      append_num(out, rr.links[l].corruptions_detected);
    }
    out += '\n';
  }

  put_blob(out, "analysis_report", r.analysis_report);
  put_blob(out, "metrics_json", r.metrics_json);
  put_blob(out, "metrics_csv", r.metrics_csv);
  put_blob(out, "timeline_csv", r.timeline_csv);
  out += "end\n";
  return out;
}

PicResult parse_result(std::string_view text) {
  PicResult r;
  Reader in{text};
  if (in.line() != kMagic) fail("bad magic / version");

  r.total_seconds = num<double>(in.value("total_seconds"));
  r.compute_seconds = num<double>(in.value("compute_seconds"));
  r.redistributions = num<int>(in.value("redistributions"));
  r.redist_seconds_total = num<double>(in.value("redist_seconds_total"));
  r.initial_distribution_seconds =
      num<double>(in.value("initial_distribution_seconds"));
  r.recoveries = num<int>(in.value("recoveries"));
  r.violation_iterations = num<int>(in.value("violation_iterations"));
  r.initial_particles = num<std::uint64_t>(in.value("initial_particles"));
  r.final_particles = num<std::uint64_t>(in.value("final_particles"));
  r.emitted_particles = num<std::uint64_t>(in.value("emitted_particles"));
  r.absorbed_particles = num<std::uint64_t>(in.value("absorbed_particles"));
  r.crash_count = num<int>(in.value("crash_count"));
  r.crash_recoveries = num<int>(in.value("crash_recoveries"));
  r.final_ranks = num<int>(in.value("final_ranks"));
  r.mttr_seconds_total = num<double>(in.value("mttr_seconds_total"));
  r.crash_lost_particles =
      num<std::uint64_t>(in.value("crash_lost_particles"));
  r.crash_restored_particles =
      num<std::uint64_t>(in.value("crash_restored_particles"));
  r.final_imbalance = num<double>(in.value("final_imbalance"));
  r.analysis_findings = num<std::int64_t>(in.value("analysis_findings"));
  r.hb_fingerprint = num<std::uint64_t>(in.value("hb_fingerprint"));
  r.determinism_audit = num<int>(in.value("determinism_audit"));
  r.traced = flag(in.value("traced"));
  r.trace_events = num<std::uint64_t>(in.value("trace_events"));
  r.field_energy = num<double>(in.value("field_energy"));
  r.kinetic_energy = num<double>(in.value("kinetic_energy"));
  r.total_charge = num<double>(in.value("total_charge"));

  {
    std::string_view v = in.value("phase_wall_us");
    while (!v.empty()) {
      const auto end = v.find(',');
      r.phase_wall_us.push_back(
          num<double>(end == std::string_view::npos ? v : v.substr(0, end)));
      v = end == std::string_view::npos ? std::string_view{}
                                        : v.substr(end + 1);
    }
  }

  const auto niters = num<std::uint64_t>(in.value("iters"));
  r.iters.reserve(static_cast<std::size_t>(niters));
  for (std::uint64_t i = 0; i < niters; ++i) {
    Row row{in.line()};
    IterRecord it;
    it.iter = num<int>(row.field());
    it.exec_seconds = num<double>(row.field());
    it.loop_seconds = num<double>(row.field());
    it.scatter_max_sent_bytes = num<std::uint64_t>(row.field());
    it.scatter_max_recv_bytes = num<std::uint64_t>(row.field());
    it.scatter_max_sent_msgs = num<std::uint64_t>(row.field());
    it.scatter_max_recv_msgs = num<std::uint64_t>(row.field());
    it.max_ghost_entries = num<std::uint64_t>(row.field());
    it.redistributed = flag(row.field());
    it.redist_seconds = num<double>(row.field());
    it.redist_particles_moved = num<std::uint64_t>(row.field());
    it.violation_mask = num<std::uint32_t>(row.field());
    it.recovered = flag(row.field());
    it.crash_recovered = flag(row.field());
    row.end();
    r.iters.push_back(it);
  }

  const auto nenergy = num<std::uint64_t>(in.value("energy"));
  r.energy_history.reserve(static_cast<std::size_t>(nenergy));
  for (std::uint64_t i = 0; i < nenergy; ++i) {
    Row row{in.line()};
    EnergySample e;
    e.iter = num<int>(row.field());
    e.field = num<double>(row.field());
    e.kinetic = num<double>(row.field());
    row.end();
    r.energy_history.push_back(e);
  }

  r.machine.epochs = num<int>(in.value("machine.epochs"));
  const auto ncrashes = num<std::uint64_t>(in.value("machine.crashes"));
  r.machine.crashes.reserve(static_cast<std::size_t>(ncrashes));
  for (std::uint64_t i = 0; i < ncrashes; ++i) {
    Row row{in.line()};
    sim::CrashRecord c;
    c.rank = num<int>(row.field());
    c.vtime = num<double>(row.field());
    row.end();
    r.machine.crashes.push_back(c);
  }

  const auto nranks = num<std::uint64_t>(in.value("machine.ranks"));
  r.machine.ranks.reserve(static_cast<std::size_t>(nranks));
  for (std::uint64_t i = 0; i < nranks; ++i) {
    sim::RankReport rr;
    Row head{in.value("rank")};
    rr.rank = num<int>(head.field());
    rr.clock = num<double>(head.field());
    rr.crashed = flag(head.field());
    rr.crash_vtime = num<double>(head.field());
    const auto nlinks = num<std::uint64_t>(head.field());
    head.end();

    Row stats{in.value("stats")};
    for (int p = 0; p < sim::kNumPhases; ++p) {
      auto& pc = rr.stats.phase(static_cast<sim::Phase>(p));
      pc.msgs_sent = num<std::uint64_t>(stats.field());
      pc.bytes_sent = num<std::uint64_t>(stats.field());
      pc.msgs_recv = num<std::uint64_t>(stats.field());
      pc.bytes_recv = num<std::uint64_t>(stats.field());
      pc.comm_seconds = num<double>(stats.field());
      pc.compute_seconds = num<double>(stats.field());
    }
    stats.end();

    Row faults{in.value("faults")};
    rr.faults.transient_slowdowns = num<std::uint64_t>(faults.field());
    rr.faults.jittered_messages = num<std::uint64_t>(faults.field());
    rr.faults.corrupted_deliveries = num<std::uint64_t>(faults.field());
    rr.faults.duplicated_messages = num<std::uint64_t>(faults.field());
    rr.faults.reordered_messages = num<std::uint64_t>(faults.field());
    rr.faults.memory_faults = num<std::uint64_t>(faults.field());
    rr.faults.crashes = num<std::uint64_t>(faults.field());
    faults.end();

    std::string_view links = in.value("links");
    if (nlinks > 0) {
      Row lrow{links};
      rr.links.reserve(static_cast<std::size_t>(nlinks));
      for (std::uint64_t l = 0; l < nlinks; ++l) {
        sim::LinkStats ls;
        ls.retries = num<std::uint64_t>(lrow.field());
        ls.dup_discards = num<std::uint64_t>(lrow.field());
        ls.corruptions_detected = num<std::uint64_t>(lrow.field());
        rr.links.push_back(ls);
      }
      lrow.end();
    } else if (!links.empty()) {
      fail("unexpected link stats");
    }
    r.machine.ranks.push_back(std::move(rr));
  }

  r.analysis_report = in.blob("analysis_report");
  r.metrics_json = in.blob("metrics_json");
  r.metrics_csv = in.blob("metrics_csv");
  r.timeline_csv = in.blob("timeline_csv");
  if (in.line() != "end") fail("missing end marker");
  if (!in.done()) fail("trailing bytes");
  return r;
}

}  // namespace picpar::pic
