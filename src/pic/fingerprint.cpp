// Canonical PicParams serialization and content fingerprint — the identity
// the sweep result cache (src/sweep) keys on.
//
// Contract (asserted by tests/pic/test_fingerprint.cpp):
//   * every semantically meaningful field changes the bytes;
//   * execution mode (ExecParams, PICPAR_PARALLEL/PICPAR_WORKERS) does not —
//     parallel runs are bit-identical to sequential ones, so one cache entry
//     serves both;
//   * the bytes are host- and process-independent (std::to_chars shortest
//     form for doubles, fixed key order, no addresses), so a fingerprint
//     computed today matches one computed by another process next week.
//
// Environment overrides that do change run semantics are folded in exactly
// the way run_pic applies them: PICPAR_CRASH_* merge into the fault config
// (entries aimed past nranks dropped), PICPAR_ANALYZE forces the analyzer
// on, and PICPAR_TRACE/PICPAR_TRACE_METRICS force tracing on. Trace output
// paths name sinks, not semantics, so only the on/off state is serialized.
#include <string>

#include "analysis/audit.hpp"
#include "pic/config.hpp"
#include "pic/simulation.hpp"
#include "sim/faults.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace picpar::pic {

namespace {

/// Bump when the meaning of existing fields changes (or a physics change
/// invalidates cached results) without the serialized keys changing.
/// v2: scenario subsystem (scenario name and partitioner.balancer joined
/// the serialization; runs they affect must not hit v1 cache entries).
constexpr int kCanonicalVersion = 2;

void kv(std::string& out, const char* key, const std::string& v) {
  out += key;
  out += '=';
  out += v;
  out += '\n';
}

void kv(std::string& out, const char* key, const char* v) {
  kv(out, key, std::string(v));
}

void kv(std::string& out, const char* key, double v) {
  out += key;
  out += '=';
  trace::detail::append_num(out, v);
  out += '\n';
}

void kv(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += '=';
  trace::detail::append_num(out, v);
  out += '\n';
}

void kv(std::string& out, const char* key, int v) {
  kv(out, key, std::to_string(v));
}

void kv(std::string& out, const char* key, bool v) {
  kv(out, key, v ? "1" : "0");
}

const char* grid_decomp_name(GridDecomp d) {
  return d == GridDecomp::kBlock ? "block" : "curve";
}

const char* solver_name(FieldSolveKind s) {
  switch (s) {
    case FieldSolveKind::kMaxwell: return "maxwell";
    case FieldSolveKind::kPoisson: return "poisson";
    case FieldSolveKind::kNone: return "none";
  }
  return "?";
}

}  // namespace

std::string PicParams::canonical() const {
  std::string out;
  out.reserve(1536);
  kv(out, "picpar-params", std::uint64_t{kCanonicalVersion});

  // ---- problem shape ----
  kv(out, "grid.nx", std::uint64_t{grid.nx});
  kv(out, "grid.ny", std::uint64_t{grid.ny});
  kv(out, "grid.lx", grid.lx);
  kv(out, "grid.ly", grid.ly);
  kv(out, "nranks", nranks);
  kv(out, "dist", particles::distribution_name(dist));
  kv(out, "scenario", scenario);
  kv(out, "init.total", init.total);
  kv(out, "init.vth", init.vth);
  kv(out, "init.drift_ux", init.drift_ux);
  kv(out, "init.drift_uy", init.drift_uy);
  kv(out, "init.sigma_fraction", init.sigma_fraction);
  kv(out, "init.omega_p", init.omega_p);
  kv(out, "init.seed", init.seed);

  // ---- decomposition and algorithm knobs ----
  kv(out, "curve", sfc::curve_kind_name(curve));
  kv(out, "grid_decomp", grid_decomp_name(grid_decomp));
  kv(out, "solver", solver_name(solver));
  kv(out, "iterations", iterations);
  kv(out, "dt", dt);
  kv(out, "policy", policy);
  kv(out, "dedup", core::dedup_policy_name(dedup));
  kv(out, "partitioner.buckets_per_rank", partitioner.buckets_per_rank);
  kv(out, "partitioner.samples_per_rank", partitioner.samples_per_rank);
  kv(out, "partitioner.ops_per_comparison", partitioner.ops_per_comparison);
  kv(out, "partitioner.ops_per_move", partitioner.ops_per_move);
  kv(out, "partitioner.balancer", partitioner.balancer);

  // ---- cost model ----
  kv(out, "costs.scatter_per_vertex", costs.scatter_per_vertex);
  kv(out, "costs.field_per_node", costs.field_per_node);
  kv(out, "costs.gather_per_vertex", costs.gather_per_vertex);
  kv(out, "costs.push_per_particle", costs.push_per_particle);
  kv(out, "machine.tau", machine.tau);
  kv(out, "machine.mu", machine.mu);
  kv(out, "machine.delta", machine.delta);
  kv(out, "machine.recv_copy_mu", machine.recv_copy_mu);

  // ---- faults (effective config: PICPAR_CRASH_* folded in, schedule
  // entries aimed past this run's rank count dropped, as run_pic does) ----
  sim::FaultConfig f = faults;
  apply_crash_env(f);
  kv(out, "faults.seed", f.seed);
  kv(out, "faults.transient_slow_prob", f.transient_slow_prob);
  kv(out, "faults.transient_slow_factor", f.transient_slow_factor);
  {
    std::string s;
    for (const int r : f.straggler_ranks) {
      if (!s.empty()) s += ',';
      s += std::to_string(r);
    }
    kv(out, "faults.straggler_ranks", s);
  }
  kv(out, "faults.straggler_factor", f.straggler_factor);
  kv(out, "faults.latency_jitter_prob", f.latency_jitter_prob);
  kv(out, "faults.latency_jitter_max_seconds", f.latency_jitter_max_seconds);
  kv(out, "faults.corrupt_prob", f.corrupt_prob);
  kv(out, "faults.duplicate_prob", f.duplicate_prob);
  kv(out, "faults.reorder_prob", f.reorder_prob);
  kv(out, "faults.max_retries", f.max_retries);
  kv(out, "faults.memory_fault_prob", f.memory_fault_prob);
  {
    std::string s;
    for (const auto& cp : f.crash_schedule) {
      if (cp.rank >= nranks) continue;
      if (!s.empty()) s += ',';
      s += std::to_string(cp.rank);
      s += '@';
      trace::detail::append_num(s, cp.vtime);
    }
    kv(out, "faults.crash_schedule", s);
  }
  kv(out, "faults.crash_prob", f.crash_prob);
  kv(out, "faults.crash_vtime_max", f.crash_vtime_max);
  kv(out, "faults.crash_lease_seconds", f.crash_lease_seconds);

  // ---- validation / recovery ----
  kv(out, "validate.check_every", validate.check_every);
  kv(out, "validate.checkpoint_every", validate.checkpoint_every);
  kv(out, "validate.max_recoveries", validate.max_recoveries);
  kv(out, "validate.invariants.balance_tolerance",
     validate.invariants.balance_tolerance);
  kv(out, "validate.invariants.balance_slack",
     validate.invariants.balance_slack);
  kv(out, "validate.invariants.energy_factor",
     validate.invariants.energy_factor);
  kv(out, "validate.invariants.verify_keys", validate.invariants.verify_keys);
  kv(out, "validate.invariants.ops_per_particle",
     validate.invariants.ops_per_particle);
  kv(out, "validate.checkpoint_ops_per_particle",
     validate.checkpoint_ops_per_particle);

  // ---- observers (effective on/off state; output paths excluded) ----
  const bool analyze_on = analyze.enabled || analyze.audit_determinism ||
                          analysis::analyzer_env_enabled();
  kv(out, "analyze.enabled", analyze_on);
  kv(out, "analyze.audit_determinism", analyze.audit_determinism);
  kv(out, "analyze.max_findings", analyze.max_findings);
  const bool trace_on = trace.on() || trace::trace_env_path() != nullptr ||
                        trace::trace_metrics_env_path() != nullptr;
  kv(out, "trace.enabled", trace_on);
  kv(out, "trace.flows", trace.flows);
  kv(out, "trace.include_wall", trace.include_wall);

  kv(out, "sample_energy_every", sample_energy_every);
  return out;
}

std::string PicParams::fingerprint() const {
  const std::string text = canonical();
  const std::uint64_t h =
      sim::fnv1a(reinterpret_cast<const std::byte*>(text.data()), text.size());
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i)
    buf[i] = hex[(h >> (60 - 4 * i)) & 0xf];
  buf[16] = '\0';
  return std::string(buf, 16);
}

}  // namespace picpar::pic
