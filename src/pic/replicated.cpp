#include "pic/replicated.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/maxwell.hpp"
#include "particles/interpolate.hpp"
#include "particles/pusher.hpp"
#include "sim/comm.hpp"

namespace picpar::pic {

using particles::ParticleArray;
using sim::Comm;
using sim::Phase;

namespace {

/// Colocated-curl helpers over the FULL replicated arrays, computing only
/// global node ids in [b, e).
struct FullMesh {
  const mesh::GridDesc* g;
  std::vector<double> ex, ey, ez, bx, by, bz, jx, jy, jz, rho;

  explicit FullMesh(const mesh::GridDesc& grid) : g(&grid) {
    const auto m = static_cast<std::size_t>(grid.nodes());
    for (auto* v : {&ex, &ey, &ez, &bx, &by, &bz, &jx, &jy, &jz, &rho})
      v->assign(m, 0.0);
  }

  void half_b(std::uint64_t b, std::uint64_t e, double dt) {
    const double i2dx = 0.5 / g->dx();
    const double i2dy = 0.5 / g->dy();
    for (std::uint64_t id = b; id < e; ++id) {
      const auto E = g->east(id), W = g->west(id), N = g->north(id),
                 S = g->south(id);
      const double cx = (ez[N] - ez[S]) * i2dy;
      const double cy = -(ez[E] - ez[W]) * i2dx;
      const double cz = (ey[E] - ey[W]) * i2dx - (ex[N] - ex[S]) * i2dy;
      bx[id] -= 0.5 * dt * cx;
      by[id] -= 0.5 * dt * cy;
      bz[id] -= 0.5 * dt * cz;
    }
  }

  void step_e(std::uint64_t b, std::uint64_t e, double dt) {
    const double i2dx = 0.5 / g->dx();
    const double i2dy = 0.5 / g->dy();
    for (std::uint64_t id = b; id < e; ++id) {
      const auto E = g->east(id), W = g->west(id), N = g->north(id),
                 S = g->south(id);
      const double cx = (bz[N] - bz[S]) * i2dy;
      const double cy = -(bz[E] - bz[W]) * i2dx;
      const double cz = (by[E] - by[W]) * i2dx - (bx[N] - bx[S]) * i2dy;
      ex[id] += dt * (cx - jx[id]);
      ey[id] += dt * (cy - jy[id]);
      ez[id] += dt * (cz - jz[id]);
    }
  }
};

/// Element-wise global sum of several full arrays (binomial allreduce).
void global_sum(Comm& comm, std::vector<std::vector<double>*> arrays) {
  std::vector<double> packed;
  std::size_t total = 0;
  for (auto* a : arrays) total += a->size();
  packed.reserve(total);
  for (auto* a : arrays) packed.insert(packed.end(), a->begin(), a->end());
  packed = comm.allreduce(std::move(packed),
                          [](double a, double b) { return a + b; });
  std::size_t pos = 0;
  for (auto* a : arrays) {
    std::copy(packed.begin() + static_cast<long>(pos),
              packed.begin() + static_cast<long>(pos + a->size()), a->begin());
    pos += a->size();
  }
}

/// Concatenate per-rank chunks [b, e) of several full arrays to everyone.
void global_concat(Comm& comm, std::uint64_t b, std::uint64_t e,
                   const std::vector<std::uint64_t>& bounds,
                   std::vector<std::vector<double>*> arrays) {
  std::vector<double> mine;
  mine.reserve((e - b) * arrays.size());
  for (auto* a : arrays)
    mine.insert(mine.end(), a->begin() + static_cast<long>(b),
                a->begin() + static_cast<long>(e));
  std::vector<std::size_t> offsets;
  auto cat = comm.allgatherv(mine, &offsets);
  for (int r = 0; r < comm.size(); ++r) {
    const std::uint64_t rb = bounds[static_cast<std::size_t>(r)];
    const std::uint64_t re = bounds[static_cast<std::size_t>(r) + 1];
    std::size_t pos = offsets[static_cast<std::size_t>(r)];
    for (auto* a : arrays) {
      std::copy(cat.begin() + static_cast<long>(pos),
                cat.begin() + static_cast<long>(pos + (re - rb)),
                a->begin() + static_cast<long>(rb));
      pos += re - rb;
    }
  }
}

}  // namespace

PicResult run_replicated(const PicParams& params) {
  if (params.init.total == 0)
    throw std::invalid_argument("run_replicated: init.total must be > 0");

  const mesh::GridDesc grid = params.grid;
  const ParticleArray global =
      particles::generate(params.dist, grid, params.init);
  const double dt =
      params.dt > 0.0 ? params.dt : mesh::MaxwellSolver::max_dt(grid);
  const double delta = params.machine.delta;
  const PhaseCosts& pc = params.costs;
  const double inv_cell = 1.0 / (grid.dx() * grid.dy());
  const std::uint64_t m = grid.nodes();

  std::vector<double> clock_end(
      static_cast<std::size_t>(params.nranks) *
          static_cast<std::size_t>(std::max(params.iterations, 1)),
      0.0);
  std::vector<double> field_energy(static_cast<std::size_t>(params.nranks), 0.0);
  std::vector<double> kinetic(static_cast<std::size_t>(params.nranks), 0.0);

  auto program = [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();

    FullMesh f(grid);
    // Field-solve chunk boundaries (contiguous node-id ranges).
    std::vector<std::uint64_t> bounds(static_cast<std::size_t>(p) + 1);
    for (int r = 0; r <= p; ++r)
      bounds[static_cast<std::size_t>(r)] =
          static_cast<std::uint64_t>(r) * m / static_cast<std::uint64_t>(p);
    const std::uint64_t cb = bounds[static_cast<std::size_t>(rank)];
    const std::uint64_t ce = bounds[static_cast<std::size_t>(rank) + 1];

    // Lagrangian assignment: equal contiguous slices, fixed forever.
    ParticleArray mine(global.charge(), global.mass());
    {
      const auto total = static_cast<std::uint64_t>(global.size());
      const std::uint64_t b = static_cast<std::uint64_t>(rank) * total /
                              static_cast<std::uint64_t>(p);
      const std::uint64_t e = static_cast<std::uint64_t>(rank + 1) * total /
                              static_cast<std::uint64_t>(p);
      mine.reserve(static_cast<std::size_t>(e - b));
      for (std::uint64_t i = b; i < e; ++i)
        mine.push_back(global.rec(static_cast<std::size_t>(i)));
    }
    const double q = mine.charge();
    const double mass = mine.mass();

    for (int iter = 0; iter < params.iterations; ++iter) {
      // ---- Scatter: local deposition + global element-wise sum ----
      comm.set_phase(Phase::kScatter);
      std::fill(f.jx.begin(), f.jx.end(), 0.0);
      std::fill(f.jy.begin(), f.jy.end(), 0.0);
      std::fill(f.jz.begin(), f.jz.end(), 0.0);
      std::fill(f.rho.begin(), f.rho.end(), 0.0);
      const std::size_t n = mine.size();
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        const double gamma = mine.gamma(i);
        const double qv = q * inv_cell;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          const auto id = static_cast<std::size_t>(st.node[k]);
          f.jx[id] += w * qv * mine.ux[i] / gamma;
          f.jy[id] += w * qv * mine.uy[i] / gamma;
          f.jz[id] += w * qv * mine.uz[i] / gamma;
          f.rho[id] += w * qv;
        }
      }
      comm.charge(static_cast<double>(4 * n) * pc.scatter_per_vertex * delta);
      global_sum(comm, {&f.jx, &f.jy, &f.jz, &f.rho});

      // ---- Field solve: chunk update + global concatenation ----
      comm.set_phase(Phase::kFieldSolve);
      if (params.solver == FieldSolveKind::kMaxwell) {
        f.half_b(cb, ce, dt);
        global_concat(comm, cb, ce, bounds, {&f.bx, &f.by, &f.bz});
        f.step_e(cb, ce, dt);
        global_concat(comm, cb, ce, bounds, {&f.ex, &f.ey, &f.ez});
        f.half_b(cb, ce, dt);
        global_concat(comm, cb, ce, bounds, {&f.bx, &f.by, &f.bz});
        comm.charge(static_cast<double>(ce - cb) * pc.field_per_node * delta);
      }

      // ---- Gather + push: purely local ----
      comm.set_phase(Phase::kGather);
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        // picpar-lint: allow(float-reduction-order) fixed 4-point stencil
        particles::LocalFields lf;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          const auto id = static_cast<std::size_t>(st.node[k]);
          lf.ex += w * f.ex[id];
          lf.ey += w * f.ey[id];
          lf.ez += w * f.ez[id];
          lf.bx += w * f.bx[id];
          lf.by += w * f.by[id];
          lf.bz += w * f.bz[id];
        }
        particles::boris_kick(q, mass, dt, lf, mine.ux[i], mine.uy[i],
                              mine.uz[i]);
      }
      comm.charge(static_cast<double>(4 * n) * pc.gather_per_vertex * delta);

      comm.set_phase(Phase::kPush);
      for (std::size_t i = 0; i < n; ++i)
        particles::advance_position(grid, mine, i, dt);
      comm.charge(static_cast<double>(n) * pc.push_per_particle * delta);
      comm.set_phase(Phase::kOther);

      clock_end[static_cast<std::size_t>(rank) *
                    static_cast<std::size_t>(std::max(params.iterations, 1)) +
                static_cast<std::size_t>(iter)] = comm.clock();
    }

    // Replicated fields: charge the energy to rank 0 only.
    if (rank == 0) {
      // picpar-lint: allow(float-reduction-order) fixed node-index sum
      double e = 0.0;
      for (std::uint64_t id = 0; id < m; ++id)
        e += f.ex[id] * f.ex[id] + f.ey[id] * f.ey[id] + f.ez[id] * f.ez[id] +
             f.bx[id] * f.bx[id] + f.by[id] * f.by[id] + f.bz[id] * f.bz[id];
      field_energy[0] = 0.5 * e * grid.dx() * grid.dy();
    }
    kinetic[static_cast<std::size_t>(rank)] = mine.kinetic_energy();
  };

  sim::Machine machine(params.nranks, params.machine);
  auto run = machine.run(program);

  PicResult result;
  result.machine = std::move(run);
  result.total_seconds = result.machine.makespan();
  result.compute_seconds = result.machine.max_compute();
  result.iters.resize(static_cast<std::size_t>(params.iterations));
  double prev = 0.0;
  const auto stride =
      static_cast<std::size_t>(std::max(params.iterations, 1));
  for (int i = 0; i < params.iterations; ++i) {
    double end = 0.0;
    for (int r = 0; r < params.nranks; ++r)
      end = std::max(end, clock_end[static_cast<std::size_t>(r) * stride +
                                    static_cast<std::size_t>(i)]);
    auto& rec = result.iters[static_cast<std::size_t>(i)];
    rec.iter = i;
    rec.exec_seconds = end - prev;
    rec.loop_seconds = rec.exec_seconds;
    prev = end;
  }
  // picpar-lint: allow(float-reduction-order) rank-order merge
  for (double e : field_energy) result.field_energy += e;
  // picpar-lint: allow(float-reduction-order) rank-order merge
  for (double k : kinetic) result.kinetic_energy += k;
  return result;
}

}  // namespace picpar::pic
