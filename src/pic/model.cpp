#include "pic/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace picpar::pic {

double ghost_point_bound(const ModelInputs& in) {
  const double p = in.nranks;
  return std::min(static_cast<double>(in.grid_points) / p,
                  4.0 * static_cast<double>(in.particles) / p);
}

PhaseBounds phase_bounds(const ModelInputs& in) {
  if (in.nranks <= 0)
    throw std::invalid_argument("phase_bounds: nranks must be > 0");
  const double p = in.nranks;
  const double n_p = static_cast<double>(in.particles) / p;
  const double m_p = static_cast<double>(in.grid_points) / p;
  const double tau = in.machine.tau;
  const double mu = in.machine.mu + in.machine.recv_copy_mu;
  const double delta = in.machine.delta;
  const double u = ghost_point_bound(in);

  PhaseBounds b;
  b.scatter = 4.0 * n_p * in.costs.scatter_per_vertex * delta +
              (p - 1.0) * tau + u * in.l_grid * mu;
  b.field_solve = m_p * in.costs.field_per_node * delta + 4.0 * tau +
                  4.0 * std::sqrt(m_p) * in.l_grid * mu;
  b.gather = 4.0 * n_p * in.costs.gather_per_vertex * delta +
             (p - 1.0) * tau + 2.0 * u * in.l_grid * mu;
  b.push = n_p * in.costs.push_per_particle * delta;
  return b;
}

PhaseBounds aligned_phase_estimate(const ModelInputs& in, int neighbors) {
  if (in.nranks <= 0)
    throw std::invalid_argument("aligned_phase_estimate: nranks must be > 0");
  const double p = in.nranks;
  const double n_p = static_cast<double>(in.particles) / p;
  const double m_p = static_cast<double>(in.grid_points) / p;
  const double tau = in.machine.tau;
  const double mu = in.machine.mu + in.machine.recv_copy_mu;
  const double delta = in.machine.delta;
  const double nb = std::min(static_cast<double>(neighbors), p - 1.0);
  // Aligned subdomains exchange only a boundary ring of ghost points.
  const double u = std::min(4.0 * std::sqrt(m_p), ghost_point_bound(in));

  PhaseBounds b;
  b.scatter = 4.0 * n_p * in.costs.scatter_per_vertex * delta + nb * tau +
              u * in.l_grid * mu;
  b.field_solve = m_p * in.costs.field_per_node * delta + 4.0 * tau +
                  4.0 * std::sqrt(m_p) * in.l_grid * mu;
  b.gather = 4.0 * n_p * in.costs.gather_per_vertex * delta + nb * tau +
             2.0 * u * in.l_grid * mu;
  b.push = n_p * in.costs.push_per_particle * delta;
  return b;
}

ModelInputs model_inputs(const PicParams& params) {
  ModelInputs in;
  in.particles = params.init.total;
  in.grid_points = params.grid.nodes();
  in.nranks = params.nranks;
  in.costs = params.costs;
  in.machine = params.machine;
  return in;
}

}  // namespace picpar::pic
