// ASCII table and CSV rendering for benchmark output. Benches reproduce
// paper tables/figures as text series, so a small table engine keeps the
// formatting consistent across all of them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace picpar {

/// Column-aligned ASCII table with an optional title. Cells are strings;
/// numeric helpers format with fixed precision.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Start a new row. Subsequent add_* calls append cells to it.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(double v, int precision = 3);
  Table& add(std::size_t v);
  Table& add(long long v);
  Table& add(int v) { return add(static_cast<long long>(v)); }

  std::size_t rows() const { return cells_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Render with box-drawing separators.
  std::string ascii() const;
  /// Render as RFC-4180-ish CSV (quotes cells containing commas).
  std::string csv() const;

  void print(std::ostream& os) const;

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Print a named (x, y) series, one "x y" pair per line — the textual
/// equivalent of one curve in a paper figure.
void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& x, const std::vector<double>& y);

}  // namespace picpar
