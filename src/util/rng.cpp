#include "util/rng.hpp"

#include <cmath>

namespace picpar {

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box–Muller: draw until u1 is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

}  // namespace picpar
