// Streaming statistics and histograms used by diagnostics and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace picpar {

/// Welford-style running statistics: mean/variance/min/max without storing
/// the samples.
class RunningStats {
public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;   ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in the
/// boundary bins.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Render as a compact ASCII bar chart (one line per bin).
  std::string ascii(std::size_t width = 50) const;

private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Load-imbalance metrics over a per-rank quantity.
struct Imbalance {
  double max = 0.0;
  double mean = 0.0;

  /// max/mean; 1.0 means perfectly balanced. Returns 0 for an empty input.
  double factor() const { return mean > 0.0 ? max / mean : 0.0; }
};

Imbalance imbalance(const std::vector<double>& per_rank);
Imbalance imbalance_counts(const std::vector<std::size_t>& per_rank);

/// Exact percentile of a sample set (copies + sorts; for small sets).
double percentile(std::vector<double> samples, double p);

}  // namespace picpar
