#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace picpar {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

Imbalance imbalance(const std::vector<double>& per_rank) {
  Imbalance r;
  if (per_rank.empty()) return r;
  double sum = 0.0;
  for (double v : per_rank) {
    r.max = std::max(r.max, v);
    sum += v;
  }
  r.mean = sum / static_cast<double>(per_rank.size());
  return r;
}

Imbalance imbalance_counts(const std::vector<std::size_t>& per_rank) {
  std::vector<double> d(per_rank.begin(), per_rank.end());
  return imbalance(d);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = std::clamp(p, 0.0, 1.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace picpar
