// Non-owning 2-D view over contiguous row-major storage.
#pragma once

#include <cassert>
#include <cstddef>

namespace picpar {

template <typename T>
class Span2d {
public:
  Span2d() = default;
  Span2d(T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace picpar
