#include "util/wall_clock.hpp"

#include <chrono>

namespace picpar::util {

std::uint64_t wall_clock() {
  // The one sanctioned use of a wall clock in this repository; see the
  // header for why everything else must go through here.
  // picpar-lint: allow(wall-clock-in-sim) the choke point itself
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace picpar::util
