// Minimal declarative command-line parsing for examples and benches.
//
//   picpar::Cli cli("quickstart", "Run a small PIC simulation");
//   auto ranks = cli.flag<int>("ranks", 32, "number of simulated processors");
//   cli.parse(argc, argv);            // exits(0) on --help, throws on error
//   run(*ranks);
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace picpar {

class Cli {
public:
  Cli(std::string program, std::string description);

  /// Register --name <value>; returns a handle that dereferences to the
  /// parsed value (or the default). Supported T: int, long, double, bool,
  /// std::string. Bool flags take no value (--name sets true).
  template <typename T>
  std::shared_ptr<T> flag(const std::string& name, T default_value,
                          const std::string& help);

  /// Parse argv. Prints usage and exits(0) on --help/-h. Throws
  /// std::runtime_error on unknown flags or malformed values.
  void parse(int argc, const char* const* argv);

  std::string usage() const;

private:
  struct Entry {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::function<void(const std::string&)> set;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
};

}  // namespace picpar
