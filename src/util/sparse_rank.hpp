// Sparse per-peer map keyed by rank id.
//
// Per-rank communication state in a neighbor-sparse PIC run touches a
// handful of peers out of thousands of ranks, so dense `vector<T>(nranks)`
// tables cost O(p) per rank / O(p^2) per machine for data that is almost
// entirely zero. SparseRankMap stores only the touched entries in a sorted
// vector of (rank, value) pairs:
//
//   - ref(rank)  inserts a default-constructed value at the sorted position
//                on first touch and returns a reference (O(log k) search,
//                O(k) shift on insert; k = touched peers, typically ~8).
//   - find(rank) returns nullptr when the peer was never touched, so read
//                paths stay allocation-free.
//   - iteration  is in ascending rank order, which is exactly the
//                deterministic order the dense loops iterated in — sparse
//                callers replace `for (r = 0; r < p; ++r)` loops without
//                changing any observable ordering.
//
// clear() keeps the entry capacity so steady-state iterations do not
// reallocate; memory_bytes() reports the footprint for the per-rank memory
// budget (capacity-based: capacity is what the rank actually pins).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace picpar::util {

template <typename T>
class SparseRankMap {
public:
  struct Entry {
    int rank;
    T value;
  };
  using const_iterator = typename std::vector<Entry>::const_iterator;
  using iterator = typename std::vector<Entry>::iterator;

  /// Value for `rank`, default-constructed and inserted on first touch.
  T& ref(int rank) {
    const auto it = lower(rank);
    if (it != entries_.end() && it->rank == rank) return it->value;
    return entries_.insert(it, Entry{rank, T{}})->value;
  }

  /// Value for `rank`, nullptr when never touched. Never allocates.
  T* find(int rank) {
    const auto it = lower(rank);
    return (it != entries_.end() && it->rank == rank) ? &it->value : nullptr;
  }
  const T* find(int rank) const {
    return const_cast<SparseRankMap*>(this)->find(rank);
  }

  /// Remove the entry for `rank` (no-op when absent). Returns whether an
  /// entry was removed. Capacity is retained.
  bool erase(int rank) {
    const auto it = lower(rank);
    if (it == entries_.end() || it->rank != rank) return false;
    entries_.erase(it);
    return true;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Drop all entries but keep the capacity (steady-state reuse).
  void clear() { entries_.clear(); }

  // Ascending-rank iteration (the deterministic replacement for dense
  // `for (r = 0; r < p; ++r)` loops).
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Footprint of the entry storage itself (capacity-based). Values that
  /// own further heap memory (vectors, sets) must be added by the caller.
  std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(Entry);
  }

private:
  typename std::vector<Entry>::iterator lower(int rank) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), rank,
        [](const Entry& e, int r) { return e.rank < r; });
  }

  std::vector<Entry> entries_;
};

}  // namespace picpar::util
