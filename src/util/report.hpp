// Experiment report writer: collects named (x, y) series and tables from a
// bench run and writes them to disk as gnuplot-ready .dat files, .csv
// tables and a .gp script that regenerates the figure — so every paper
// figure can be re-plotted from a single bench invocation.
#pragma once

#include <string>
#include <vector>

#include "util/table.hpp"

namespace picpar {

class Report {
public:
  /// `name` becomes the output subdirectory and the gnuplot output title.
  explicit Report(std::string name);

  const std::string& name() const { return name_; }

  /// Add one curve. Series order is preserved in the plot.
  void add_series(std::string series_name, std::vector<double> x,
                  std::vector<double> y);

  /// Add a table (written as <table_name>.csv).
  void add_table(std::string table_name, Table table);

  /// Axis labels for the emitted gnuplot script.
  void set_axis_labels(std::string x_label, std::string y_label);

  std::size_t series_count() const { return series_.size(); }
  std::size_t table_count() const { return tables_.size(); }

  /// The gnuplot script text (references the .dat files write() produces).
  std::string gnuplot_script() const;

  /// Write everything under dir/name/: one .dat per series, one .csv per
  /// table, and <name>.gp. Creates directories as needed. Throws
  /// std::runtime_error on I/O failure.
  void write(const std::string& dir) const;

private:
  struct Series {
    std::string name;
    std::vector<double> x, y;
  };

  static std::string sanitize(const std::string& s);

  std::string name_;
  std::string x_label_ = "x";
  std::string y_label_ = "y";
  std::vector<Series> series_;
  std::vector<std::pair<std::string, Table>> tables_;
};

}  // namespace picpar
