// Annotation markers for `picpar-lint` (tools/picpar_lint).
//
// A finding is suppressed when the flagged line — or the line directly
// above it, or the declaration line of the variable involved — carries an
// allow marker naming the check:
//
//     // picpar-lint: allow(<check-id>[, <check-id>...]) <free-form reason>
//     PICPAR_LINT_ALLOW(<check-id>);
//
// `allow(all)` suppresses every check on that line. The comment spelling is
// preferred; the macro form exists for sites where a trailing comment would
// be clipped by clang-format or where the marker should survive tooling
// that strips comments. Check ids:
//
//   unordered-iteration-escape  wall-clock-in-sim  pointer-ordering
//   tag-discipline              float-reduction-order
//
// Every marker must say *why* the site is safe; "the lint complained" is
// not a reason. See DESIGN.md section 12 for each check's rationale.
#pragma once

// Expands to nothing: the macro is a lexical marker read by picpar-lint
// from the raw source text, never by the compiler.
#define PICPAR_LINT_ALLOW(checks)

namespace picpar::util {}  // markers only; nothing to declare
