#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/env.hpp"

namespace picpar {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = env_get("PICPAR_LOG");
    if (!env) return;
    LogLevel parsed;
    if (parse_log_level_strict(env, parsed)) {
      g_level.store(parsed);
    } else {
      // Keep the default level, but say so — "PICPAR_LOG=inf" silently
      // meaning kInfo hid typos for a long time.
      detail::log_emit(LogLevel::kWarn,
                       std::string("PICPAR_LOG=\"") + env +
                           "\" is not a log level "
                           "(error|warn|info|debug|trace); keeping default");
    }
  });
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() {
  init_from_env();
  return g_level.load();
}

bool parse_log_level_strict(const std::string& name, LogLevel& out) {
  if (name == "error") out = LogLevel::kError;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "debug") out = LogLevel::kDebug;
  else if (name == "trace") out = LogLevel::kTrace;
  else return false;
  return true;
}

LogLevel parse_log_level(const std::string& name) {
  LogLevel l = LogLevel::kInfo;
  parse_log_level_strict(name, l);
  return l;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lk(g_emit_mutex);
  std::cerr << "[picpar:" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace picpar
