#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/env.hpp"

namespace picpar {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    if (const char* env = env_get("PICPAR_LOG"))
      g_level.store(parse_log_level(env));
  });
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() {
  init_from_env();
  return g_level.load();
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lk(g_emit_mutex);
  std::cerr << "[picpar:" << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace picpar
