// Shared parsing of PICPAR_* environment variables.
//
// Every runtime opt-in (PICPAR_PARALLEL, PICPAR_ANALYZE, PICPAR_TRACE,
// PICPAR_WORKERS, PICPAR_LOG) goes through these helpers so the semantics
// are uniform across libraries, benches and examples: a boolean variable
// is enabled when set to anything but "" or "0"; a path-valued variable is
// its value under the same rule; an integer variable falls back when unset
// or malformed. See the README "Environment variables" table.
#pragma once

namespace picpar {

/// Raw value (may be empty); nullptr when the variable is unset.
const char* env_get(const char* name);

/// Boolean opt-in: set, non-empty, and not "0".
bool env_enabled(const char* name);

/// Path-valued variable: the value when set, non-empty and not "0"
/// (so `PICPAR_TRACE=0` disables like the boolean rule); else nullptr.
const char* env_path(const char* name);

/// Integer variable: the parsed value when set and parseable as a decimal
/// integer, else `fallback`.
int env_int(const char* name, int fallback);

}  // namespace picpar
