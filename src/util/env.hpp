// Shared parsing of PICPAR_* environment variables.
//
// Every runtime opt-in (PICPAR_PARALLEL, PICPAR_ANALYZE, PICPAR_TRACE,
// PICPAR_WORKERS, PICPAR_LOG) goes through these helpers so the semantics
// are uniform across libraries, benches and examples: a boolean variable
// is enabled when set to anything but "" or "0"; a path-valued variable is
// its value under the same rule; an integer variable falls back when unset
// or malformed. Integer parsing is strict — the whole value must be a
// decimal integer in range, so typos like "1x" or " 2 " fall back (with a
// warning) instead of being silently half-parsed. See the README
// "Environment variables" table.
#pragma once

namespace picpar {

/// Raw value (may be empty); nullptr when the variable is unset.
const char* env_get(const char* name);

/// Boolean opt-in: set, non-empty, and not "0".
bool env_enabled(const char* name);

/// Path-valued variable: the value when set, non-empty and not "0"
/// (so `PICPAR_TRACE=0` disables like the boolean rule); else nullptr.
const char* env_path(const char* name);

/// Strict decimal parse: an optional +/- sign followed by digits only — no
/// whitespace, no trailing characters, no empty string — and the value must
/// fit [min, max]. Returns false (leaving `out` untouched) otherwise.
bool parse_int_strict(const char* text, long min, long max, long& out);

/// Integer variable: the strictly parsed value when set, well-formed, and
/// within int range; else `fallback`. A set-but-rejected value emits one
/// warning naming the variable so typos are not silently ignored.
int env_int(const char* name, int fallback);

}  // namespace picpar
