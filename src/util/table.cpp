#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace picpar {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) row();
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

Table& Table::add(std::size_t v) { return add(std::to_string(v)); }
Table& Table::add(long long v) { return add(std::to_string(v)); }

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

std::string Table::ascii() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += hline() + emit_row(header_) + hline();
  for (const auto& r : cells_) out += emit_row(r);
  out += hline();
  return out;
}

std::string Table::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c)
    out += (c ? "," : "") + quote(header_[c]);
  out += '\n';
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) out += (c ? "," : "") + quote(r[c]);
    out += '\n';
  }
  return out;
}

void Table::print(std::ostream& os) const { os << ascii(); }

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("print_series: x/y size mismatch");
  os << "# series: " << name << " (" << x.size() << " points)\n";
  for (std::size_t i = 0; i < x.size(); ++i)
    os << x[i] << ' ' << y[i] << '\n';
}

}  // namespace picpar
