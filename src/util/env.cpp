#include "util/env.hpp"

#include <cstdlib>

namespace picpar {

const char* env_get(const char* name) { return std::getenv(name); }

bool env_enabled(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const char* env_path(const char* name) {
  return env_enabled(name) ? std::getenv(name) : nullptr;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(parsed);
}

}  // namespace picpar
