#include "util/env.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "util/log.hpp"

namespace picpar {

const char* env_get(const char* name) { return std::getenv(name); }

bool env_enabled(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const char* env_path(const char* name) {
  return env_enabled(name) ? std::getenv(name) : nullptr;
}

bool parse_int_strict(const char* text, long min, long max, long& out) {
  if (!text || text[0] == '\0') return false;
  // strtol tolerates leading whitespace; strictness forbids it. A lone
  // sign ("-", "+") leaves end == text and is rejected below.
  if (text[0] == ' ' || text[0] == '\t' || text[0] == '\n' ||
      text[0] == '\r' || text[0] == '\f' || text[0] == '\v')
    return false;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;  // garbage or trailing junk
  if (errno == ERANGE) return false;              // overflowed long
  if (parsed < min || parsed > max) return false;
  out = parsed;
  return true;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  long parsed = 0;
  if (!parse_int_strict(v, INT_MIN, INT_MAX, parsed)) {
    PICPAR_LOG(kWarn) << name << "=\"" << v
                      << "\" is not a valid integer; using " << fallback;
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace picpar
