// The repository's single wall-clock source.
//
// Everything this project computes — physics, clocks, traces, metrics — is
// a pure function of its inputs; wall time is the one quantity that is not,
// so it is quarantined behind this choke point. `picpar-lint` (check
// `wall-clock-in-sim`) statically rejects any other use of
// std::chrono::{system,steady,high_resolution}_clock, time(), clock(),
// std::rand, or std::random_device under src/, and additionally restricts
// callers of wall_clock() itself to src/trace (the tracer's wall spans are
// human-facing annotations, excluded from every deterministic export).
//
// If you think you need wall time elsewhere, you almost certainly want the
// simulated clock (sim::Comm::clock()) or the deterministic RNG
// (util::SplitMix64 in util/rng.hpp) instead.
#pragma once

#include <cstdint>

namespace picpar::util {

/// Monotonic wall time in nanoseconds since an unspecified epoch.
/// Schedule-dependent by nature: values must never feed simulated state or
/// any deterministic export, only human-facing diagnostics.
std::uint64_t wall_clock();

}  // namespace picpar::util
