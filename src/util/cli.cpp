#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace picpar {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

namespace {

template <typename T>
T parse_value(const std::string& s);

template <>
int parse_value<int>(const std::string& s) { return std::stoi(s); }
template <>
long parse_value<long>(const std::string& s) { return std::stol(s); }
template <>
double parse_value<double>(const std::string& s) { return std::stod(s); }
template <>
std::string parse_value<std::string>(const std::string& s) { return s; }

template <typename T>
std::string repr(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

template <typename T>
std::shared_ptr<T> Cli::flag(const std::string& name, T default_value,
                             const std::string& help) {
  auto storage = std::make_shared<T>(default_value);
  Entry e;
  e.help = help;
  e.default_repr = repr(default_value);
  if constexpr (std::is_same_v<T, bool>) {
    e.is_bool = true;
    e.set = [storage](const std::string&) { *storage = true; };
  } else {
    e.set = [storage, name](const std::string& s) {
      try {
        *storage = parse_value<T>(s);
      } catch (const std::exception&) {
        throw std::runtime_error("bad value for --" + name + ": " + s);
      }
    };
  }
  entries_[name] = std::move(e);
  return storage;
}

template std::shared_ptr<int> Cli::flag(const std::string&, int, const std::string&);
template std::shared_ptr<long> Cli::flag(const std::string&, long, const std::string&);
template std::shared_ptr<double> Cli::flag(const std::string&, double, const std::string&);
template std::shared_ptr<bool> Cli::flag(const std::string&, bool, const std::string&);
template std::shared_ptr<std::string> Cli::flag(const std::string&, std::string, const std::string&);

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0)
      throw std::runtime_error("unexpected positional argument: " + arg);
    std::string name = arg.substr(2);
    std::string value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) throw std::runtime_error("unknown flag: " + arg);
    if (it->second.is_bool) {
      it->second.set("");
    } else {
      if (value.empty()) {
        if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
        value = argv[++i];
      }
      it->second.set(value);
    }
  }
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name;
    if (!e.is_bool) os << " <v>";
    os << "  " << e.help << " (default: " << e.default_repr << ")\n";
  }
  os << "  --help  show this message\n";
  return os.str();
}

}  // namespace picpar
