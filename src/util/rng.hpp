// Deterministic pseudo-random number generation for reproducible simulations.
//
// We avoid std::mt19937 + std::*_distribution because their output is not
// guaranteed identical across standard-library implementations; experiment
// reproducibility requires bit-stable streams.
#pragma once

#include <cstdint>
#include <utility>

namespace picpar {

/// SplitMix64 — used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, bit-stable PRNG.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (deterministic pairing).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_cached_ = false;
  double cached_ = 0.0;

  friend double rng_normal_impl(Rng&);
};

}  // namespace picpar
