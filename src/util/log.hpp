// Leveled logging to stderr. Global level is settable via code or the
// PICPAR_LOG environment variable (error|warn|info|debug|trace).
#pragma once

#include <sstream>
#include <string>

namespace picpar {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Strict parse of a level name (error|warn|info|debug|trace); returns
/// false on anything else, leaving `out` untouched.
bool parse_log_level_strict(const std::string& name, LogLevel& out);

/// Parse a level name; unknown names map to kInfo. Prefer the strict form
/// when the caller can report the error (PICPAR_LOG does).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Streaming one-shot logger: LOG(kInfo) << "x=" << x;
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ <= log_level()) detail::log_emit(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ <= log_level()) os_ << v;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace picpar

#define PICPAR_LOG(level) ::picpar::LogLine(::picpar::LogLevel::level)
