// 2-D Hilbert curve on the smallest power-of-two square enclosing the grid.
#pragma once

#include "sfc/curve.hpp"

namespace picpar::sfc {

/// Convert (x, y) on a 2^order x 2^order square to its Hilbert distance.
std::uint64_t hilbert2d_index(std::uint32_t order, std::uint32_t x,
                              std::uint32_t y);

/// Inverse: Hilbert distance to (x, y).
std::pair<std::uint32_t, std::uint32_t> hilbert2d_coords(std::uint32_t order,
                                                         std::uint64_t d);

class HilbertCurve final : public Curve {
public:
  HilbertCurve(std::uint32_t nx, std::uint32_t ny);

  std::uint64_t index(std::uint32_t x, std::uint32_t y) const override;
  std::pair<std::uint32_t, std::uint32_t> coords(std::uint64_t idx) const override;
  std::string name() const override { return "hilbert"; }

  std::uint32_t order() const { return order_; }

private:
  std::uint32_t order_;
};

}  // namespace picpar::sfc
