// Memoized cell -> curve-index map (hot-path optimization, DESIGN.md §10).
//
// Particle indexing (Section 5.1) evaluates the space-filling curve once per
// particle per iteration in the push phase, and once per particle in every
// assign_keys pass. The curve value depends only on the (static) grid cell,
// so a flat table of nx*ny entries — one evaluation per cell, built once —
// replaces the per-particle O(order) Hilbert walk with a single load. The
// grid and curve never change during a run, so the table never invalidates;
// were the mesh ever refined, the cache would be rebuilt at that
// redistribution epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/curve.hpp"

namespace picpar::sfc {

class IndexCache {
public:
  /// Evaluate `curve` at every cell of an nx-by-ny grid. O(nx*ny) curve
  /// evaluations, done exactly once.
  IndexCache(const Curve& curve, std::uint32_t nx, std::uint32_t ny);

  /// Curve index of cell id (node id convention: id = y * nx + x).
  std::uint64_t operator[](std::uint64_t cell) const { return keys_[cell]; }

  std::size_t size() const { return keys_.size(); }

  /// Largest index the curve produces on this grid. Curve indices need not
  /// be dense (Hilbert pads to a power-of-two square), so the index *space*
  /// [0, max_index()] can exceed the cell count — anything sized by curve
  /// index (e.g. per-cell weight histograms) must use this, not size().
  std::uint64_t max_index() const { return max_index_; }

private:
  std::vector<std::uint64_t> keys_;
  std::uint64_t max_index_ = 0;
};

}  // namespace picpar::sfc
