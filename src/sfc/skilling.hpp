// n-dimensional Hilbert curve via Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
//
// The paper notes the Hilbert scheme "can be generalized to n-dimensions";
// this is that generalization, used for the 3-D demonstration example and
// property tests. Coordinates use `bits` bits per dimension.
#pragma once

#include <cstdint>
#include <vector>

namespace picpar::sfc {

/// In-place: axes coordinates -> Hilbert transpose form.
void axes_to_transpose(std::vector<std::uint32_t>& x, int bits);

/// In-place: Hilbert transpose form -> axes coordinates.
void transpose_to_axes(std::vector<std::uint32_t>& x, int bits);

/// Hilbert distance of an n-D point (bits per dim * dims <= 64).
std::uint64_t hilbert_nd_index(std::vector<std::uint32_t> coords, int bits);

/// Inverse of hilbert_nd_index.
std::vector<std::uint32_t> hilbert_nd_coords(std::uint64_t d, int bits,
                                             int dims);

}  // namespace picpar::sfc
