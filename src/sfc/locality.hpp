// Locality metrics of an indexing: how compact are the subdomains obtained
// by cutting the curve order into equal runs? The paper attributes snake's
// higher communication cost to "rectangular [subdomains] with high aspect
// ratios ... boundaries with larger perimeters" (Section 6.3); these
// metrics quantify that claim in tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/curve.hpp"

namespace picpar::sfc {

struct BoundingBox {
  std::uint32_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  std::uint64_t width() const { return max_x - min_x + 1; }
  std::uint64_t height() const { return max_y - min_y + 1; }
  std::uint64_t area() const { return width() * height(); }
  std::uint64_t half_perimeter() const { return width() + height(); }
  double aspect_ratio() const;
};

BoundingBox bounding_box(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells);

struct SegmentLocality {
  BoundingBox box;
  std::uint64_t cells = 0;
  /// Number of cell edges on the segment boundary (cells adjacent in the
  /// grid but in different segments or outside the grid) — proportional to
  /// the halo/ghost communication the segment generates.
  std::uint64_t boundary_edges = 0;
};

/// Split the curve order over all cells of the grid into `parts` equal
/// contiguous runs and measure each run.
std::vector<SegmentLocality> measure_partition(const Curve& curve, int parts);

/// Mean half-perimeter over segments — a single scalar "communication
/// surface" figure of merit (lower is better).
double mean_half_perimeter(const std::vector<SegmentLocality>& segs);

/// Mean boundary edges per segment.
double mean_boundary_edges(const std::vector<SegmentLocality>& segs);

}  // namespace picpar::sfc
