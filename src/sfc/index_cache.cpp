#include "sfc/index_cache.hpp"

#include <stdexcept>

namespace picpar::sfc {

IndexCache::IndexCache(const Curve& curve, std::uint32_t nx,
                       std::uint32_t ny) {
  if (nx == 0 || ny == 0)
    throw std::invalid_argument("IndexCache: grid dims must be > 0");
  keys_.resize(static_cast<std::size_t>(nx) * ny);
  std::size_t id = 0;
  for (std::uint32_t y = 0; y < ny; ++y)
    for (std::uint32_t x = 0; x < nx; ++x) {
      keys_[id] = curve.index(x, y);
      if (keys_[id] > max_index_) max_index_ = keys_[id];
      ++id;
    }
}

}  // namespace picpar::sfc
