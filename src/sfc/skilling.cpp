#include "sfc/skilling.hpp"

#include <stdexcept>

namespace picpar::sfc {

void axes_to_transpose(std::vector<std::uint32_t>& x, int bits) {
  const auto n = static_cast<int>(x.size());
  if (n == 0) return;
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo excess work.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {  // exchange
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[static_cast<std::size_t>(n - 1)] & q) t ^= q - 1;
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

void transpose_to_axes(std::vector<std::uint32_t>& x, int bits) {
  const auto n = static_cast<int>(x.size());
  if (n == 0) return;
  const std::uint32_t m = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[static_cast<std::size_t>(n - 1)] >> 1;
  for (int i = n - 1; i > 0; --i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t w = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= w;
        x[static_cast<std::size_t>(i)] ^= w;
      }
    }
  }
}

std::uint64_t hilbert_nd_index(std::vector<std::uint32_t> coords, int bits) {
  const auto dims = static_cast<int>(coords.size());
  if (dims * bits > 64)
    throw std::invalid_argument("hilbert_nd_index: dims * bits > 64");
  axes_to_transpose(coords, bits);
  // Interleave the transpose form into a single integer, MSB first:
  // bit b of dimension i lands at position (bits-1-b)*dims + i from the top.
  std::uint64_t d = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < dims; ++i)
      d = (d << 1) | ((coords[static_cast<std::size_t>(i)] >> b) & 1u);
  return d;
}

std::vector<std::uint32_t> hilbert_nd_coords(std::uint64_t d, int bits,
                                             int dims) {
  if (dims * bits > 64)
    throw std::invalid_argument("hilbert_nd_coords: dims * bits > 64");
  std::vector<std::uint32_t> x(static_cast<std::size_t>(dims), 0);
  int shift = dims * bits;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < dims; ++i) {
      --shift;
      x[static_cast<std::size_t>(i)] |=
          static_cast<std::uint32_t>((d >> shift) & 1u) << b;
    }
  transpose_to_axes(x, bits);
  return x;
}

}  // namespace picpar::sfc
