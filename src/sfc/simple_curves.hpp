// Row-major, snakelike (boustrophedon) and Morton orderings — the
// comparison indexings from the paper (Fig 9) plus Morton for generality.
#pragma once

#include "sfc/curve.hpp"

namespace picpar::sfc {

class RowMajorCurve final : public Curve {
public:
  using Curve::Curve;
  std::uint64_t index(std::uint32_t x, std::uint32_t y) const override;
  std::pair<std::uint32_t, std::uint32_t> coords(std::uint64_t idx) const override;
  std::string name() const override { return "rowmajor"; }
};

/// Snakelike: rows alternate direction, so consecutive indices are always
/// adjacent cells — but subdomains carved from the order are long thin
/// strips (high-aspect-ratio), the property Table 2 penalizes.
class SnakeCurve final : public Curve {
public:
  using Curve::Curve;
  std::uint64_t index(std::uint32_t x, std::uint32_t y) const override;
  std::pair<std::uint32_t, std::uint32_t> coords(std::uint64_t idx) const override;
  std::string name() const override { return "snake"; }
};

/// Morton / Z-order: bit interleaving on the enclosing power-of-two square.
class MortonCurve final : public Curve {
public:
  MortonCurve(std::uint32_t nx, std::uint32_t ny);
  std::uint64_t index(std::uint32_t x, std::uint32_t y) const override;
  std::pair<std::uint32_t, std::uint32_t> coords(std::uint64_t idx) const override;
  std::string name() const override { return "morton"; }
};

}  // namespace picpar::sfc
