// Space-filling-curve indexings of the cells of a 2-D grid.
//
// A Curve maps cell coordinates (x, y) on an nx-by-ny grid to a 1-D index
// whose *order* is what matters: sorting cells (and the particles inside
// them) by this index and cutting the sorted sequence into equal runs is
// how the paper partitions both arrays (Section 5.1, Figs 9-10).
//
// Index values need not be dense; Hilbert indices on a non-square grid are
// computed on the smallest enclosing power-of-two square, so they have gaps
// but preserve spatial locality.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace picpar::sfc {

class Curve {
public:
  Curve(std::uint32_t nx, std::uint32_t ny) : nx_(nx), ny_(ny) {}
  virtual ~Curve() = default;

  std::uint32_t nx() const { return nx_; }
  std::uint32_t ny() const { return ny_; }
  std::uint64_t cells() const {
    return static_cast<std::uint64_t>(nx_) * ny_;
  }

  /// 1-D index of cell (x, y); x < nx, y < ny.
  virtual std::uint64_t index(std::uint32_t x, std::uint32_t y) const = 0;

  /// Inverse of index() for indices produced by this curve.
  virtual std::pair<std::uint32_t, std::uint32_t> coords(
      std::uint64_t idx) const = 0;

  virtual std::string name() const = 0;

protected:
  std::uint32_t nx_;
  std::uint32_t ny_;
};

enum class CurveKind { kRowMajor, kSnake, kMorton, kHilbert };

const char* curve_kind_name(CurveKind k);

/// Parse a curve name ("rowmajor", "snake", "morton", "hilbert").
/// Throws std::invalid_argument on unknown names.
CurveKind parse_curve_kind(const std::string& name);

std::unique_ptr<Curve> make_curve(CurveKind kind, std::uint32_t nx,
                                  std::uint32_t ny);

}  // namespace picpar::sfc
