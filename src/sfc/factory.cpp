#include <stdexcept>

#include "sfc/curve.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::sfc {

const char* curve_kind_name(CurveKind k) {
  switch (k) {
    case CurveKind::kRowMajor: return "rowmajor";
    case CurveKind::kSnake: return "snake";
    case CurveKind::kMorton: return "morton";
    case CurveKind::kHilbert: return "hilbert";
  }
  return "?";
}

CurveKind parse_curve_kind(const std::string& name) {
  if (name == "rowmajor") return CurveKind::kRowMajor;
  if (name == "snake") return CurveKind::kSnake;
  if (name == "morton") return CurveKind::kMorton;
  if (name == "hilbert") return CurveKind::kHilbert;
  throw std::invalid_argument("unknown curve kind: " + name);
}

std::unique_ptr<Curve> make_curve(CurveKind kind, std::uint32_t nx,
                                  std::uint32_t ny) {
  switch (kind) {
    case CurveKind::kRowMajor: return std::make_unique<RowMajorCurve>(nx, ny);
    case CurveKind::kSnake: return std::make_unique<SnakeCurve>(nx, ny);
    case CurveKind::kMorton: return std::make_unique<MortonCurve>(nx, ny);
    case CurveKind::kHilbert: return std::make_unique<HilbertCurve>(nx, ny);
  }
  throw std::invalid_argument("make_curve: bad kind");
}

}  // namespace picpar::sfc
