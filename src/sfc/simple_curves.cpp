#include "sfc/simple_curves.hpp"

#include <stdexcept>

namespace picpar::sfc {

std::uint64_t RowMajorCurve::index(std::uint32_t x, std::uint32_t y) const {
  return static_cast<std::uint64_t>(y) * nx_ + x;
}

std::pair<std::uint32_t, std::uint32_t> RowMajorCurve::coords(
    std::uint64_t idx) const {
  return {static_cast<std::uint32_t>(idx % nx_),
          static_cast<std::uint32_t>(idx / nx_)};
}

std::uint64_t SnakeCurve::index(std::uint32_t x, std::uint32_t y) const {
  const std::uint32_t col = (y % 2 == 0) ? x : nx_ - 1 - x;
  return static_cast<std::uint64_t>(y) * nx_ + col;
}

std::pair<std::uint32_t, std::uint32_t> SnakeCurve::coords(
    std::uint64_t idx) const {
  const auto y = static_cast<std::uint32_t>(idx / nx_);
  auto x = static_cast<std::uint32_t>(idx % nx_);
  if (y % 2 != 0) x = nx_ - 1 - x;
  return {x, y};
}

namespace {

std::uint64_t spread_bits(std::uint32_t v) {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

std::uint32_t compact_bits(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<std::uint32_t>(x);
}

}  // namespace

MortonCurve::MortonCurve(std::uint32_t nx, std::uint32_t ny) : Curve(nx, ny) {
  if (nx == 0 || ny == 0)
    throw std::invalid_argument("MortonCurve: grid dims must be > 0");
}

std::uint64_t MortonCurve::index(std::uint32_t x, std::uint32_t y) const {
  return spread_bits(x) | (spread_bits(y) << 1);
}

std::pair<std::uint32_t, std::uint32_t> MortonCurve::coords(
    std::uint64_t idx) const {
  return {compact_bits(idx), compact_bits(idx >> 1)};
}

}  // namespace picpar::sfc
