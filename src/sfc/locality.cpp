#include "sfc/locality.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace picpar::sfc {

double BoundingBox::aspect_ratio() const {
  const double w = static_cast<double>(width());
  const double h = static_cast<double>(height());
  return w > h ? w / h : h / w;
}

BoundingBox bounding_box(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells) {
  if (cells.empty()) return {};
  BoundingBox b{std::numeric_limits<std::uint32_t>::max(),
                std::numeric_limits<std::uint32_t>::max(), 0, 0};
  for (auto [x, y] : cells) {
    b.min_x = std::min(b.min_x, x);
    b.min_y = std::min(b.min_y, y);
    b.max_x = std::max(b.max_x, x);
    b.max_y = std::max(b.max_y, y);
  }
  return b;
}

std::vector<SegmentLocality> measure_partition(const Curve& curve, int parts) {
  if (parts <= 0) throw std::invalid_argument("measure_partition: parts > 0");
  const std::uint64_t ncells = curve.cells();
  const std::uint32_t nx = curve.nx();
  const std::uint32_t ny = curve.ny();

  // Rank every cell by curve index, then cut into equal runs.
  std::vector<std::uint64_t> cell_ids(ncells);
  std::iota(cell_ids.begin(), cell_ids.end(), 0);
  std::vector<std::uint64_t> keys(ncells);
  for (std::uint64_t c = 0; c < ncells; ++c) {
    const auto x = static_cast<std::uint32_t>(c % nx);
    const auto y = static_cast<std::uint32_t>(c / nx);
    keys[c] = curve.index(x, y);
  }
  std::sort(cell_ids.begin(), cell_ids.end(),
            [&](std::uint64_t a, std::uint64_t b) { return keys[a] < keys[b]; });

  std::vector<int> owner(ncells);
  for (std::uint64_t pos = 0; pos < ncells; ++pos) {
    const auto part = static_cast<int>(pos * static_cast<std::uint64_t>(parts) / ncells);
    owner[cell_ids[pos]] = part;
  }

  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> members(
      static_cast<std::size_t>(parts));
  for (std::uint64_t c = 0; c < ncells; ++c)
    members[static_cast<std::size_t>(owner[c])].emplace_back(
        static_cast<std::uint32_t>(c % nx), static_cast<std::uint32_t>(c / nx));

  std::vector<SegmentLocality> out(static_cast<std::size_t>(parts));
  for (int part = 0; part < parts; ++part) {
    auto& seg = out[static_cast<std::size_t>(part)];
    seg.cells = members[static_cast<std::size_t>(part)].size();
    seg.box = bounding_box(members[static_cast<std::size_t>(part)]);
  }

  // Count boundary edges: 4-neighborhood edges crossing owners or the grid.
  auto owner_at = [&](long x, long y) -> int {
    if (x < 0 || y < 0 || x >= static_cast<long>(nx) || y >= static_cast<long>(ny))
      return -1;
    return owner[static_cast<std::uint64_t>(y) * nx + static_cast<std::uint64_t>(x)];
  };
  for (std::uint64_t c = 0; c < ncells; ++c) {
    const auto x = static_cast<long>(c % nx);
    const auto y = static_cast<long>(c / nx);
    const int me = owner[c];
    const long nbrs[4][2] = {{x + 1, y}, {x - 1, y}, {x, y + 1}, {x, y - 1}};
    for (const auto& nb : nbrs)
      if (owner_at(nb[0], nb[1]) != me)
        ++out[static_cast<std::size_t>(me)].boundary_edges;
  }
  return out;
}

double mean_half_perimeter(const std::vector<SegmentLocality>& segs) {
  if (segs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : segs) sum += static_cast<double>(s.box.half_perimeter());
  return sum / static_cast<double>(segs.size());
}

double mean_boundary_edges(const std::vector<SegmentLocality>& segs) {
  if (segs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : segs) sum += static_cast<double>(s.boundary_edges);
  return sum / static_cast<double>(segs.size());
}

}  // namespace picpar::sfc
