#include "sfc/hilbert.hpp"

#include <bit>
#include <stdexcept>

namespace picpar::sfc {

namespace {

// One quadrant-rotation step of the classic iterative algorithm
// (Warren, "Hacker's Delight" / Wikipedia formulation).
void rotate(std::uint64_t n, std::uint32_t& x, std::uint32_t& y,
            std::uint64_t rx, std::uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = static_cast<std::uint32_t>(n - 1 - x);
      y = static_cast<std::uint32_t>(n - 1 - y);
    }
    std::swap(x, y);
  }
}

std::uint32_t order_for(std::uint32_t nx, std::uint32_t ny) {
  const std::uint32_t side = std::max(nx, ny);
  std::uint32_t order = 0;
  while ((1u << order) < side) ++order;
  return order;
}

}  // namespace

std::uint64_t hilbert2d_index(std::uint32_t order, std::uint32_t x,
                              std::uint32_t y) {
  const std::uint64_t n = 1ULL << order;
  std::uint64_t d = 0;
  for (std::uint64_t s = n / 2; s > 0; s /= 2) {
    const std::uint64_t rx = (x & s) ? 1 : 0;
    const std::uint64_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    rotate(n, x, y, rx, ry);
  }
  return d;
}

std::pair<std::uint32_t, std::uint32_t> hilbert2d_coords(std::uint32_t order,
                                                         std::uint64_t d) {
  const std::uint64_t n = 1ULL << order;
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint64_t t = d;
  for (std::uint64_t s = 1; s < n; s *= 2) {
    const std::uint64_t rx = 1 & (t / 2);
    const std::uint64_t ry = 1 & (t ^ rx);
    rotate(s, x, y, rx, ry);
    x += static_cast<std::uint32_t>(s * rx);
    y += static_cast<std::uint32_t>(s * ry);
    t /= 4;
  }
  return {x, y};
}

HilbertCurve::HilbertCurve(std::uint32_t nx, std::uint32_t ny)
    : Curve(nx, ny), order_(order_for(nx, ny)) {
  if (nx == 0 || ny == 0)
    throw std::invalid_argument("HilbertCurve: grid dims must be > 0");
}

std::uint64_t HilbertCurve::index(std::uint32_t x, std::uint32_t y) const {
  return hilbert2d_index(order_, x, y);
}

std::pair<std::uint32_t, std::uint32_t> HilbertCurve::coords(
    std::uint64_t idx) const {
  return hilbert2d_coords(order_, idx);
}

}  // namespace picpar::sfc
