#include "scenario/scenario.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace picpar::scenario {

using particles::InitParams;
using particles::ParticleArray;
using particles::ParticleRec;
using particles::Species;

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;
/// Golden-ratio increment decorrelates per-iteration injector streams from
/// the loadout stream (same constant SplitMix64 uses internally).
constexpr std::uint64_t kSeedMix = 0x9e3779b97f4a7c15ULL;

// ---- loadouts -------------------------------------------------------------
// Migrated scenarios delegate to particles::generate verbatim, so a run
// launched by scenario name is bit-identical to the legacy dist switch.

ParticleArray uniform_loadout(const mesh::GridDesc& g, const InitParams& ip) {
  return particles::generate(particles::Distribution::kUniform, g, ip);
}

ParticleArray irregular_loadout(const mesh::GridDesc& g,
                                const InitParams& ip) {
  return particles::generate(particles::Distribution::kGaussian, g, ip);
}

ParticleArray two_stream_loadout(const mesh::GridDesc& g,
                                 const InitParams& ip) {
  return particles::generate(particles::Distribution::kTwoStream, g, ip);
}

/// Weibel-like setup: species 0 is a light electron population with a hot
/// out-of-plane axis (uz spread 4x the in-plane spread), species 1 a heavy
/// cold ion background of opposite charge (global neutrality). Alternating
/// assignment keeps the two populations interleaved in memory and exactly
/// balanced. A transverse B seed (registry entry) lets filaments grow.
ParticleArray weibel_loadout(const mesh::GridDesc& g, const InitParams& ip) {
  const double qe =
      ip.omega_p > 0.0
          ? -particles::macro_charge(g, ip.total, 1.0, ip.omega_p)
          : -1.0;
  ParticleArray p(std::vector<Species>{{qe, 1.0}, {-qe, 100.0}});
  p.reserve(ip.total);
  Rng rng(ip.seed);
  for (std::uint64_t i = 0; i < ip.total; ++i) {
    ParticleRec r;
    r.x = rng.uniform(0.0, g.lx);
    r.y = rng.uniform(0.0, g.ly);
    const std::uint64_t sp = i % 2;
    if (sp == 0) {
      r.ux = ip.vth * rng.normal();
      r.uy = ip.vth * rng.normal();
      r.uz = 4.0 * ip.vth * rng.normal();
    } else {
      r.ux = 0.2 * ip.vth * rng.normal();
      r.uy = 0.2 * ip.vth * rng.normal();
      r.uz = 0.2 * ip.vth * rng.normal();
    }
    r.key = sp;  // species-in-key low bits; assign_keys preserves them
    p.push_back(r);
  }
  return p;
}

/// Beam-into-plasma: species 0 is a thermal electron plasma filling the
/// domain, species 1 a denser electron beam starting as a slab at the x = 0
/// edge with a directed +x drift. Every fifth particle is beam, so the
/// initial beam carries 20% of the population; the injector (registry
/// entry) keeps feeding it while the +x boundary absorbs what leaves.
ParticleArray beam_into_plasma_loadout(const mesh::GridDesc& g,
                                       const InitParams& ip) {
  const double qe =
      ip.omega_p > 0.0
          ? -particles::macro_charge(g, ip.total, 1.0, ip.omega_p)
          : -1.0;
  ParticleArray p(std::vector<Species>{{qe, 1.0}, {qe, 1.0}});
  p.reserve(ip.total);
  Rng rng(ip.seed);
  for (std::uint64_t i = 0; i < ip.total; ++i) {
    ParticleRec r;
    const std::uint64_t sp = (i % 5 == 4) ? 1 : 0;
    if (sp == 1) {
      r.x = rng.uniform(0.0, 0.15 * g.lx);
      r.y = rng.uniform(0.0, g.ly);
      r.ux = 0.4 + ip.vth * rng.normal();
    } else {
      r.x = rng.uniform(0.0, g.lx);
      r.y = rng.uniform(0.0, g.ly);
      r.ux = ip.vth * rng.normal();
    }
    r.uy = ip.vth * rng.normal();
    r.uz = ip.vth * rng.normal();
    r.key = sp;
    p.push_back(r);
  }
  return p;
}

ParticleArray hotspot_loadout(const mesh::GridDesc& g, const InitParams& ip) {
  return particles::generate(particles::Distribution::kUniform, g, ip);
}

const std::vector<Scenario>& registry() {
  static const std::vector<Scenario> scenarios = [] {
    std::vector<Scenario> v;

    {
      Scenario s;
      s.name = "uniform";
      s.summary = "uniform thermal plasma (the paper's regular case)";
      s.species = {{"electron", 1.0}};
      s.loadout = uniform_loadout;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "irregular_beam";
      s.summary =
          "center-concentrated blob (the paper's irregular case, Fig 15)";
      s.species = {{"electron", 1.0}};
      s.loadout = irregular_loadout;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "two_stream";
      s.summary = "counter-streaming electron beams split by parity";
      s.species = {{"electron", 1.0}};
      s.loadout = two_stream_loadout;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "weibel";
      s.summary =
          "anisotropic electrons over a cold heavy ion background, "
          "seeded transverse B";
      s.species = {{"electron", 1.0}, {"ion", 100.0}};
      s.field_seed.enabled = true;
      s.field_seed.target = SeedField::kBz;
      s.field_seed.amp = 1e-3;
      s.field_seed.mode_x = 2;
      s.loadout = weibel_loadout;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "beam_into_plasma";
      s.summary =
          "thermal plasma plus an injected electron beam; open x boundary";
      s.species = {{"plasma_electron", 1.0}, {"beam_electron", 1.0}};
      s.boundary = Boundary::kAbsorbX;
      s.injector.enabled = true;
      s.injector.rate_fraction = 0.002;
      s.injector.species = 1;
      s.injector.vth = 0.02;
      s.injector.drift_ux = 0.4;
      s.injector.edge_fraction = 0.05;
      s.loadout = beam_into_plasma_loadout;
      v.push_back(std::move(s));
    }
    {
      Scenario s;
      s.name = "moving_hotspot";
      s.summary =
          "uniform plasma stirred by a rotating Gaussian attractor driver";
      s.species = {{"electron", 1.0}};
      s.driver.enabled = true;
      s.driver.amp = 0.02;
      s.driver.omega = 0.05;
      s.driver.sigma_fraction = 0.15;
      s.loadout = hotspot_loadout;
      v.push_back(std::move(s));
    }
    return v;
  }();
  return scenarios;
}

}  // namespace

const Scenario* find_scenario(const std::string& name) {
  for (const auto& s : registry())
    if (s.name == name) return &s;
  return nullptr;
}

const Scenario& get_scenario(const std::string& name) {
  const Scenario* s = find_scenario(name);
  if (s == nullptr)
    throw std::invalid_argument("unknown scenario: " + name);
  return *s;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& s : registry()) out.push_back(s.name);
  return out;
}

std::uint64_t injector_rate(const Scenario& sc, std::uint64_t total) {
  if (!sc.injector.enabled) return 0;
  const double r = sc.injector.rate_fraction * static_cast<double>(total);
  const auto n = static_cast<std::uint64_t>(r + 0.5);
  return n > 0 ? n : 1;
}

std::vector<ParticleRec> injector_batch(const Scenario& sc,
                                        const mesh::GridDesc& grid,
                                        const InitParams& init, int iter) {
  std::vector<ParticleRec> batch;
  const std::uint64_t rate = injector_rate(sc, init.total);
  if (rate == 0) return batch;
  const InjectorSpec& inj = sc.injector;

  // One fresh stream per iteration, identical on every rank: no draw-order
  // coupling with anything else in the run.
  Rng rng(init.seed + kSeedMix * (static_cast<std::uint64_t>(iter) + 1));
  batch.reserve(rate);
  for (std::uint64_t i = 0; i < rate; ++i) {
    ParticleRec r;
    r.x = rng.uniform(0.0, inj.edge_fraction * grid.lx);
    r.y = rng.uniform(0.0, grid.ly);
    r.ux = inj.drift_ux + inj.vth * rng.normal();
    r.uy = inj.vth * rng.normal();
    r.uz = inj.vth * rng.normal();
    r.key = static_cast<std::uint64_t>(inj.species);
    batch.push_back(r);
  }
  return batch;
}

DriverField driver_field(const DriverSpec& d, const mesh::GridDesc& grid,
                         double t, double x, double y) {
  // Attractive Gaussian hotspot circling the domain center. No periodic
  // wrap of the offset: the envelope suppresses the field long before the
  // nearest-image distinction matters for the chosen radius.
  const double cx = grid.lx * (0.5 + 0.25 * std::cos(d.omega * t));
  const double cy = grid.ly * (0.5 + 0.25 * std::sin(d.omega * t));
  const double dx = x - cx;
  const double dy = y - cy;
  const double s = d.sigma_fraction * grid.lx;
  const double env = std::exp(-(dx * dx + dy * dy) / (2.0 * s * s));
  return {-d.amp * dx * env, -d.amp * dy * env};
}

void apply_field_seed(const FieldSeedSpec& fs, const mesh::GridDesc& grid,
                      const mesh::LocalGrid& lg, mesh::FieldState& f) {
  if (!fs.enabled) return;
  const double k = kTwoPi * static_cast<double>(fs.mode_x) / grid.lx;
  std::vector<double>& target = fs.target == SeedField::kEx ? f.ex : f.bz;
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    const std::uint64_t gid = lg.gid_of(l);
    const double x = static_cast<double>(grid.node_x(gid)) * grid.dx();
    target[l] += fs.amp * std::sin(k * x);
  }
}

}  // namespace picpar::scenario
