// Scenario library (DESIGN.md §14): named physical setups a PIC run can be
// launched from. A scenario bundles everything the engines previously spread
// over ad-hoc switches — the initial particle loadout, the species table,
// an optional analytic field seed, an optional time-dependent driver field,
// the domain boundary kind, and an optional boundary injector that emits
// fresh particles every iteration.
//
// Determinism contract: every piece is a pure function of the run
// configuration. Loadouts and injector batches draw from seeded streams
// that every rank evaluates identically (no communication, no rank-
// dependent draws), field seeds are functions of the *global* node
// coordinate, and the driver field is a function of (virtual time,
// position). Sequential and parallel execution therefore stay bit-identical
// for every scenario, and the legacy path (PicParams::scenario == "") is
// untouched byte-for-byte.
//
// Registry:
//   uniform          the paper's uniform case (migrated from src/pic)
//   irregular_beam   the paper's center-concentrated irregular case
//   two_stream       counter-streaming beams (migrated)
//   weibel           two species (light anisotropic electrons, heavy cold
//                    ions), seeded transverse B — Weibel-like filamentation
//   beam_into_plasma thermal plasma plus an electron beam injected at the
//                    x = 0 edge; the +x boundary absorbs (open boundary)
//   moving_hotspot   uniform plasma stirred by a rotating Gaussian
//                    attractor driver field
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/fields.hpp"
#include "mesh/grid.hpp"
#include "mesh/local_grid.hpp"
#include "particles/init.hpp"
#include "particles/particle_array.hpp"

namespace picpar::scenario {

struct SpeciesDesc {
  std::string label;    ///< for reports/tests; not part of the physics
  double mass = 1.0;    ///< species mass (charge is set by the loadout,
                        ///< which scales it from InitParams::omega_p)
};

/// Deterministic boundary source: every iteration, `rate(total)` particles
/// are emitted near the x = 0 edge with a directed drift into the domain.
/// Every rank derives the identical batch from (seed, iteration) alone and
/// keeps only the particles whose key lands in its partition range.
struct InjectorSpec {
  bool enabled = false;
  /// Emitted count per iteration = max(1, round(total * rate_fraction)).
  double rate_fraction = 0.0;
  int species = 0;          ///< species id of emitted particles
  double vth = 0.02;        ///< thermal spread of the emitted momenta
  double drift_ux = 0.3;    ///< directed momentum into the domain
  double edge_fraction = 0.05;  ///< emitted x in [0, edge_fraction * lx)
};

/// Time-dependent analytic driver: a rotating attractive Gaussian hotspot
/// added to the interpolated E field right before the Boris kick. Pure
/// function of (virtual time, position) — no state, no communication.
struct DriverSpec {
  bool enabled = false;
  double amp = 0.0;             ///< restoring-field strength
  double omega = 0.0;           ///< angular speed of the hotspot center
  double sigma_fraction = 0.15; ///< Gaussian envelope radius / lx
};

enum class SeedField { kEx, kBz };

/// Deterministic initial field perturbation: a sinusoid along x applied to
/// owned nodes as a function of their *global* coordinate, so every
/// decomposition (and every post-recovery group size) seeds identically.
struct FieldSeedSpec {
  bool enabled = false;
  SeedField target = SeedField::kEx;
  double amp = 0.0;
  int mode_x = 1;  ///< wavenumber in units of 2*pi/lx
};

enum class Boundary {
  kPeriodic,  ///< both axes wrap (the paper's setup)
  kAbsorbX,   ///< particles leaving through x = 0 or x = lx are absorbed
};

struct Scenario {
  std::string name;
  std::string summary;
  std::vector<SpeciesDesc> species;
  Boundary boundary = Boundary::kPeriodic;
  InjectorSpec injector;
  DriverSpec driver;
  FieldSeedSpec field_seed;
  /// Generate the global initial population (identical on every rank).
  /// Multi-species loadouts seed key = species id — the species-in-key
  /// encoding's low bits, which assign_keys preserves thereafter.
  particles::ParticleArray (*loadout)(const mesh::GridDesc&,
                                      const particles::InitParams&) = nullptr;
};

/// Look up a scenario by name; nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

/// Like find_scenario but throws std::invalid_argument on unknown names.
const Scenario& get_scenario(const std::string& name);

/// Registry names in registration order.
std::vector<std::string> scenario_names();

/// The injected particle batch for one iteration: identical on every rank
/// (seeded by init.seed and the iteration number only). Returned records
/// carry key = species id; the caller finishes the species-in-key encoding
/// from the position. Empty when the scenario has no injector.
std::vector<particles::ParticleRec> injector_batch(
    const Scenario& sc, const mesh::GridDesc& grid,
    const particles::InitParams& init, int iter);

/// Emitted count per iteration for this scenario/population (0 when the
/// injector is disabled).
std::uint64_t injector_rate(const Scenario& sc, std::uint64_t total);

struct DriverField {
  double ex = 0.0;
  double ey = 0.0;
};

/// Driver contribution to the E field at (x, y) at virtual time t.
DriverField driver_field(const DriverSpec& d, const mesh::GridDesc& grid,
                         double t, double x, double y);

/// Apply the scenario's initial field perturbation to the owned nodes.
void apply_field_seed(const FieldSeedSpec& fs, const mesh::GridDesc& grid,
                      const mesh::LocalGrid& lg, mesh::FieldState& f);

}  // namespace picpar::scenario
