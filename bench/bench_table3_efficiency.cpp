// Table 3: efficiency of the Hilbert indexing scheme.
//
//   efficiency(P) = T_serial / (P * T_P)
//
// where T_serial is the modeled one-processor time (no communication).
// Expected shape: good efficiencies through P=128; near-constant
// efficiency when particles-per-processor is held fixed (32Ki@32 vs
// 64Ki@64 on 256x128, etc.).
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

namespace {

/// Modeled serial time: the same computation charged on one rank with no
/// communication (pure compute; redistribution unnecessary).
double serial_time(pic::PicParams params) {
  params.nranks = 1;
  params.policy = "static";
  const auto r = pic::run_pic(params);
  return r.compute_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_table3_efficiency",
          "Table 3: efficiency of the Hilbert indexing scheme");
  // Beyond the paper's P=128: the simulated machine now scales to
  // 1024-4096 ranks (sparse per-peer state; see DESIGN.md section 15), so
  // the efficiency curve can be extended past the CM-5's partition sizes.
  // Iterations are cut because wall time grows with P even at fixed work.
  auto large = cli.flag<bool>(
      "large", false, "extend the machine to P=1024/2048/4096");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = *large ? (scale.full ? 20 : 4) : (scale.full ? 200 : 50);

  bench::print_header("Table 3 — efficiency of Hilbert indexing",
                      "eff = T_serial / (P * T_P); SAR redistribution");

  struct Config {
    std::uint32_t nx, ny;
    std::uint64_t n;
  };
  const Config configs[] = {
      {256, 128, 32768}, {256, 128, 65536}, {512, 256, 65536},
      {512, 256, 131072}};
  const std::vector<int> procs = *large ? std::vector<int>{1024, 2048, 4096}
                                        : std::vector<int>{32, 64, 128};

  std::vector<std::string> headers = {"distribution", "mesh", "particles"};
  for (const int p : procs) headers.push_back("P=" + std::to_string(p));
  Table table(headers);
  table.set_title("Table 3: efficiency, " + std::to_string(iters) +
                  " iterations");

  for (const std::string& dist :
       {std::string("uniform"), std::string("irregular")}) {
    for (const auto& cfg : configs) {
      const auto n = scale.particles(cfg.n);
      auto base = bench::paper_params(dist, cfg.nx, cfg.ny, n, 1);
      base.iterations = iters;
      const double t1 = serial_time(base);

      auto& row = table.row()
                      .add(dist)
                      .add(std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny))
                      .add(static_cast<std::size_t>(n));
      for (int p : procs) {
        auto params = base;
        params.nranks = p;
        params.policy = "sar";
        const auto r = pic::run_pic(params);
        row.add(t1 / (static_cast<double>(p) * r.total_seconds), 3);
        std::cout << "." << std::flush;
      }
      std::cout << '\n';
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: efficiencies stay high to P=128 and are similar "
               "when particles-per-processor matches (e.g. 32Ki@32 vs "
               "64Ki@64 on 256x128).\n";
  return 0;
}
