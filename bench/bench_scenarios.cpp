// Scenario library ablation: every scenario from src/scenario crossed with
// space-filling curve and balancer policy, routed through the cached sweep
// service. The interesting axes interact: injection scenarios keep feeding
// one domain edge (stressing redistribution), multi-species runs change the
// push/scatter mix, and the weighted balancers trade exact count balance
// for cell alignment — the table shows which combination pays off where.
// --csv writes the deterministic comparison artifact (virtual-time metrics
// only, byte-identical between cold and warm cache runs).
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "pic/simulation.hpp"
#include "scenario/scenario.hpp"
#include "sweep/sweep.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_scenarios",
          "Scenario x curve x balancer ablation via the sweep service");
  auto ranks = cli.flag<int>("ranks", 16, "simulated processors");
  auto csv_path = cli.flag<std::string>(
      "csv", "", "write the comparison CSV artifact to this file");
  const auto sf = bench::sweep_flags(cli);
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 40;
  const std::uint64_t n = scale.particles(16384);

  bench::print_header(
      "Scenario library — scenario x curve x balancer, " +
          std::to_string(iters) + " iterations, " + std::to_string(*ranks) +
          " nodes",
      "modeled CM-5 seconds; cached sweep service");

  const std::vector<std::string> curves =
      scale.full ? std::vector<std::string>{"hilbert", "morton", "snake"}
                 : std::vector<std::string>{"hilbert", "morton"};
  const std::vector<std::string> balancers = {"lagrange", "eulerian",
                                              "sfcweight:2"};

  struct Row {
    std::string scenario, curve, balancer;
  };
  std::vector<Row> rows;
  std::vector<sweep::Job> jobs;
  for (const auto& name : scenario::scenario_names())
    for (const auto& curve : curves)
      for (const auto& balancer : balancers) {
        auto params = bench::paper_params("uniform", 64, 32, n, *ranks);
        params.scenario = name;
        params.iterations = iters;
        params.policy = "periodic:10";
        params.curve = sfc::parse_curve_kind(curve);
        params.partitioner.balancer = balancer;
        rows.push_back({name, curve, balancer});
        jobs.push_back({name + "/" + curve + "/" + balancer, params});
      }

  const auto report = bench::run_sweep_jobs(jobs, sf);

  Table table({"scenario", "curve", "balancer", "total (s)", "redists",
               "final imb", "emitted", "absorbed"});
  table.set_title("Scenario x curve x balancer");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = report.outcomes[i].result;
    table.row()
        .add(rows[i].scenario)
        .add(rows[i].curve)
        .add(rows[i].balancer)
        .add(r.total_seconds, 2)
        .add(static_cast<std::uint64_t>(r.redistributions))
        .add(r.final_imbalance, 3)
        .add(r.emitted_particles)
        .add(r.absorbed_particles);
  }
  table.print(std::cout);
  std::cout << "\nExpected: the Lagrangian balancer minimizes count "
               "imbalance everywhere; the weighted balancers trade a "
               "bounded imbalance for cell-aligned subdomains, costing most "
               "on the concentrated scenarios.\n";

  if (!csv_path->empty()) {
    std::ofstream f(*csv_path, std::ios::trunc);
    if (!f) {
      std::cerr << "cannot write " << *csv_path << '\n';
      return 1;
    }
    f << sweep::comparison_csv(report);
    std::cout << "wrote " << *csv_path << '\n';
  }
  return 0;
}
