// Shared scaffolding for the paper-reproduction benches.
//
// Every bench binary runs standalone and prints the rows/series of one
// table or figure. Defaults are scaled down so the whole suite finishes in
// minutes on a laptop; pass --full for the paper's exact parameters
// (2000-iteration runs, 128 simulated processors, 512x256 meshes).
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "pic/config.hpp"
#include "pic/result.hpp"
#include "sweep/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace picpar::bench {

struct Scale {
  bool full = false;
  /// Multiply an iteration count by the scale factor (full: 1.0).
  int iters(int paper_iters) const {
    return full ? paper_iters : std::max(20, paper_iters / 5);
  }
  /// Divide a particle count for the reduced runs.
  std::uint64_t particles(std::uint64_t paper_count) const {
    return full ? paper_count : paper_count / 2;
  }
};

/// Parse the standard bench flags (--full, --seed); returns the scale.
/// Additional flags may be registered on `cli` before calling.
Scale parse_scale(picpar::Cli& cli, int argc, const char* const* argv);

/// The paper's experimental setup (Section 6): 2-D relativistic EM PIC on
/// the simulated CM-5, independent partitioning, Lagrangian particles.
/// `dist` is "uniform" or the center-concentrated "irregular" case; the
/// blob gets a bulk drift so subdomains decouple over time, which is what
/// redistribution responds to.
pic::PicParams paper_params(const std::string& dist, std::uint32_t nx,
                            std::uint32_t ny, std::uint64_t particles,
                            int nranks);

/// Print a standard bench header naming the experiment.
void print_header(const std::string& experiment, const std::string& note);

/// Run independent sweep configurations on up to `jobs` worker threads
/// (1 = serial, 0 = host hardware concurrency). Each task runs one
/// configuration on its own Machine and returns its formatted output; the
/// outputs are printed to stdout in submission order once all tasks have
/// finished, so concurrent runs produce byte-identical reports to serial
/// ones. Do not use around wall-clock measurements — co-scheduled
/// configurations contend for cores and distort timings. (A thin wrapper
/// over sweep::run_indexed.)
void run_jobs(int jobs, std::vector<std::function<std::string()>> tasks);

/// Standard sweep flags for benches that route their simulations through
/// the cached sweep driver (src/sweep): --jobs (worker threads for cache
/// misses) and --cache (result cache directory; defaults to the
/// PICPAR_SWEEP_CACHE environment variable, "" = uncached). Register on
/// `cli` before parse_scale.
struct SweepFlags {
  std::shared_ptr<int> jobs;
  std::shared_ptr<std::string> cache;
};
SweepFlags sweep_flags(picpar::Cli& cli);

/// Run labeled configurations through sweep::run_sweep with the parsed
/// flags. When a cache directory is active, prints the one-line cache
/// summary (prefixed "# ") — with no cache the bench's output is
/// byte-identical to running every configuration inline.
sweep::SweepReport run_sweep_jobs(const std::vector<sweep::Job>& jobs,
                                  const SweepFlags& flags);

/// Format seconds with 2-decimal fixed precision (paper table style).
std::string fmt_s(double seconds);

}  // namespace picpar::bench
