// Micro-benchmarks: raw index-computation throughput of the space-filling
// curves (google-benchmark). Particle indexing runs once per particle per
// push, so curve evaluation speed bounds the indexing overhead.
#include <benchmark/benchmark.h>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"
#include "sfc/skilling.hpp"
#include "util/rng.hpp"

namespace {

using namespace picpar;

template <typename CurveT>
void bench_curve_index(benchmark::State& state) {
  CurveT curve(1u << 10, 1u << 10);
  Rng rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pts(4096);
  for (auto& p : pts)
    p = {static_cast<std::uint32_t>(rng.below(1u << 10)),
         static_cast<std::uint32_t>(rng.below(1u << 10))};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = pts[i++ & 4095];
    benchmark::DoNotOptimize(curve.index(p.first, p.second));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RowMajorIndex(benchmark::State& s) {
  bench_curve_index<sfc::RowMajorCurve>(s);
}
void BM_SnakeIndex(benchmark::State& s) {
  bench_curve_index<sfc::SnakeCurve>(s);
}
void BM_MortonIndex(benchmark::State& s) {
  bench_curve_index<sfc::MortonCurve>(s);
}
void BM_HilbertIndex(benchmark::State& s) {
  bench_curve_index<sfc::HilbertCurve>(s);
}
BENCHMARK(BM_RowMajorIndex);
BENCHMARK(BM_SnakeIndex);
BENCHMARK(BM_MortonIndex);
BENCHMARK(BM_HilbertIndex);

void BM_HilbertCoords(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::uint64_t> ds(4096);
  for (auto& d : ds) d = rng.below(1ull << 20);
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(sfc::hilbert2d_coords(10, ds[i++ & 4095]));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HilbertCoords);

void BM_SkillingNdIndex(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<std::uint32_t> coord(static_cast<std::size_t>(dims));
  for (auto _ : state) {
    for (auto& c : coord) c = static_cast<std::uint32_t>(rng.below(1u << 8));
    benchmark::DoNotOptimize(sfc::hilbert_nd_index(coord, 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkillingNdIndex)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
