// Figure 21: overhead (execution time - computation time) of 200
// iterations for the UNIFORM distribution, Hilbert vs snakelike indexing,
// P in {32, 64, 128}. Overhead bundles redistribution cost plus
// communication in the scatter, field-solve and gather phases.
//
// Expected shape: Hilbert overhead <= snake; overhead flat or decreasing
// with P for a fixed problem; redistribution share < 20% at 128 procs.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig21_overhead_uniform",
          "Figure 21: overhead for the uniform distribution");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 50;

  bench::print_header("Figure 21 — overhead, uniform distribution",
                      "overhead = execution - computation (modeled s)");

  struct Config {
    std::uint32_t nx, ny;
    std::uint64_t n;
  };
  const Config configs[] = {
      {256, 128, 32768}, {256, 128, 65536}, {512, 256, 65536},
      {512, 256, 131072}};

  Table table({"mesh", "particles", "indexing", "P", "overhead (s)",
               "redist share"});
  table.set_title("Fig 21: overhead of " + std::to_string(iters) +
                  " iterations, uniform");

  for (const auto& cfg : configs) {
    const auto n = scale.particles(cfg.n);
    for (const auto curve : {sfc::CurveKind::kHilbert, sfc::CurveKind::kSnake}) {
      for (int p : {32, 64, 128}) {
        auto params = bench::paper_params("uniform", cfg.nx, cfg.ny, n, p);
        params.iterations = iters;
        params.curve = curve;
        const auto r = pic::run_pic(params);
        const double share =
            r.overhead_seconds() > 0.0
                ? r.redist_seconds_total / r.overhead_seconds()
                : 0.0;
        table.row()
            .add(std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny))
            .add(static_cast<std::size_t>(n))
            .add(sfc::curve_kind_name(curve))
            .add(static_cast<long long>(p))
            .add(r.overhead_seconds(), 2)
            .add(share, 3);
        std::cout << "." << std::flush;
      }
    }
    std::cout << '\n';
  }
  table.print(std::cout);
  std::cout << "\nExpected: hilbert overhead <= snake; flat/decreasing in P; "
               "redistribution share < 0.2 at P=128.\n";
  return 0;
}
