// Perf guard for the hot-path kernels of DESIGN.md §10: each optimized
// kernel is timed against an in-binary reference implementation (the
// pre-optimization algorithm) on identical inputs, and the run FAILS
// (non-zero exit) if the optimized kernel is slower than
// reference * (1 + threshold%). CI runs this in Release; the threshold
// lives in one place below and is overridable via PICPAR_PERF_GUARD_PCT.
//
// Checks:
//   merge    merge_bucket_runs vs per-bucket runs + k-way heap merge_runs
//   scatter  GhostExchange (generation-stamped hash + per-cell memo) vs
//            per-particle unordered_map dedup with no memo
//   index    sfc::IndexCache table lookup vs per-call HilbertCurve::index
//
// Each check also verifies the two implementations produce identical
// results, so the guard cannot pass by computing the wrong thing fast.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "core/ghost_exchange.hpp"
#include "core/sort_util.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/index_cache.hpp"
#include "sim/machine.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace {

using namespace picpar;
using particles::ParticleArray;
using particles::ParticleRec;

/// The one threshold: max tolerated slowdown of optimized vs reference,
/// in percent. >0 gives headroom for timer noise; the optimized kernels
/// are all well over 1.3x faster than their references, so tripping this
/// means a real regression.
int guard_threshold_pct() { return env_int("PICPAR_PERF_GUARD_PCT", 15); }

/// Best-of-N wall time of `fn`, in seconds.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

bool report(const char* name, double ref_s, double opt_s) {
  const double limit = ref_s * (1.0 + guard_threshold_pct() / 100.0);
  const bool ok = opt_s <= limit;
  std::printf("%-8s ref=%8.3f ms  opt=%8.3f ms  speedup=%5.2fx  %s\n", name,
              ref_s * 1e3, opt_s * 1e3, ref_s / opt_s, ok ? "PASS" : "FAIL");
  return ok;
}

// ---------------------------------------------------------------- merge --

bool check_merge() {
  // Steady-state incremental sort shape: L mostly-full sorted buckets over
  // disjoint key ranges plus a small sorted arrival run.
  constexpr int kBuckets = 16;
  constexpr std::size_t kPerBucket = 16384;
  constexpr std::size_t kIncoming = 2048;
  Rng rng(31);
  std::vector<std::vector<ParticleRec>> buckets(kBuckets);
  std::uint64_t lo = 0;
  for (auto& b : buckets) {
    b.resize(kPerBucket);
    for (auto& r : b) r.key = lo + rng.below(1000);
    std::sort(b.begin(), b.end(),
              [](const ParticleRec& a, const ParticleRec& c) {
                return a.key < c.key;
              });
    lo += 1000;
  }
  std::vector<ParticleRec> incoming(kIncoming);
  for (auto& r : incoming) r.key = rng.below(lo);
  std::sort(incoming.begin(), incoming.end(),
            [](const ParticleRec& a, const ParticleRec& c) {
              return a.key < c.key;
            });

  ParticleArray out_ref(-1.0, 1.0), out_opt(-1.0, 1.0);
  // Reference: the seed algorithm — every bucket and the arrival run fed
  // to the k-way heap merge.
  const double ref = best_of(5, [&] {
    std::vector<std::vector<ParticleRec>> runs = buckets;
    runs.push_back(incoming);
    core::merge_runs(runs, out_ref);
  });
  const double opt = best_of(5, [&] {
    core::merge_bucket_runs(buckets, incoming, out_opt);
  });

  if (out_ref.size() != out_opt.size()) {
    std::printf("merge    FAIL: output sizes differ\n");
    return false;
  }
  for (std::size_t i = 0; i < out_ref.size(); ++i)
    if (out_ref.key[i] != out_opt.key[i]) {
      std::printf("merge    FAIL: outputs differ at %zu\n", i);
      return false;
    }
  return report("merge", ref, opt);
}

// -------------------------------------------------------------- scatter --

/// Pre-optimization ghost dedup: per-particle unordered_map probe for
/// every stencil node, no per-cell memo, map rebuilt every iteration.
struct NaiveGhost {
  std::unordered_map<std::uint64_t, std::uint32_t> slots;
  std::vector<double> deposit;
  void begin_iteration() {
    slots.clear();
    deposit.clear();
  }
  double* slot(std::uint64_t gid) {
    auto [it, fresh] = slots.try_emplace(
        gid, static_cast<std::uint32_t>(slots.size()));
    if (fresh) deposit.resize(deposit.size() + core::GhostExchange::kDeposit, 0.0);
    return deposit.data() +
           static_cast<std::size_t>(it->second) * core::GhostExchange::kDeposit;
  }
};

bool check_scatter() {
  // A rank-0 local grid; the particle stream walks non-owned cells in
  // curve order with several particles per cell — the locality the memo
  // exploits and the irregular-blob runs exhibit.
  mesh::GridDesc g(128, 64);
  const auto part = mesh::GridPartition::block(g, 2, 1);
  mesh::LocalGrid lg(part, 0);
  constexpr int kPerCell = 8;
  constexpr int kIters = 20;

  // (cell id, 4 stencil node gids) for every non-owned cell.
  std::vector<std::array<std::uint64_t, 4>> cells;
  for (std::uint32_t y = 0; y < g.ny - 1; ++y)
    for (std::uint32_t x = 64; x < g.nx - 1; ++x)
      cells.push_back({g.node_id(x, y), g.node_id(x + 1, y),
                       g.node_id(x, y + 1), g.node_id(x + 1, y + 1)});

  NaiveGhost naive;
  double sum_ref = 0.0;
  const double ref = best_of(3, [&] {
    sum_ref = 0.0;
    for (int it = 0; it < kIters; ++it) {
      naive.begin_iteration();
      for (const auto& c : cells)
        for (int p = 0; p < kPerCell; ++p)
          for (int k = 0; k < 4; ++k) naive.slot(c[k])[3] += 0.25;
      for (const double v : naive.deposit) sum_ref += v;
    }
  });

  core::GhostExchange ge(lg, core::DedupPolicy::kHash);
  double sum_opt = 0.0;
  const double opt = best_of(3, [&] {
    sum_opt = 0.0;
    for (int it = 0; it < kIters; ++it) {
      ge.begin_iteration();
      std::uint64_t memo_cell = ~std::uint64_t{0};
      std::uint32_t memo_idx[4] = {0, 0, 0, 0};
      for (const auto& c : cells) {
        if (c[0] != memo_cell) {
          memo_cell = c[0];
          for (int k = 0; k < 4; ++k)
            memo_idx[k] = ge.deposit_slot_index(c[k]);
        }
        for (int p = 0; p < kPerCell; ++p)
          for (int k = 0; k < 4; ++k) ge.deposit_data(memo_idx[k])[3] += 0.25;
      }
      for (std::uint32_t s = 0; s < ge.entries(); ++s)
        sum_opt += ge.deposit_data(s)[3];
    }
  });

  if (sum_ref != sum_opt) {
    std::printf("scatter  FAIL: deposited sums differ (%f vs %f)\n", sum_ref,
                sum_opt);
    return false;
  }
  return report("scatter", ref, opt);
}

// ---------------------------------------------------------------- index --

bool check_index() {
  sfc::HilbertCurve curve(128, 64);
  const sfc::IndexCache cache(curve, 128, 64);
  constexpr std::size_t kLookups = 2'000'000;
  Rng rng(47);
  std::vector<std::uint32_t> xs(kLookups), ys(kLookups);
  for (std::size_t i = 0; i < kLookups; ++i) {
    xs[i] = static_cast<std::uint32_t>(rng.below(128));
    ys[i] = static_cast<std::uint32_t>(rng.below(64));
  }

  std::uint64_t sum_ref = 0, sum_opt = 0;
  const double ref = best_of(3, [&] {
    sum_ref = 0;
    for (std::size_t i = 0; i < kLookups; ++i)
      sum_ref += curve.index(xs[i], ys[i]);
  });
  const double opt = best_of(3, [&] {
    sum_opt = 0;
    for (std::size_t i = 0; i < kLookups; ++i)
      sum_opt += cache[static_cast<std::uint64_t>(ys[i]) * 128 + xs[i]];
  });

  if (sum_ref != sum_opt) {
    std::printf("index    FAIL: index sums differ\n");
    return false;
  }
  return report("index", ref, opt);
}

// --------------------------------------------------------------- memory --

/// Max per-rank transport bytes after a few rounds of nearest-neighbor
/// exchange on a ring of p ranks. Point-to-point only — no collectives, so
/// nothing in the workload legitimately touches O(p) peers.
std::size_t ring_peak_bytes(int p) {
  std::vector<std::size_t> peak(static_cast<std::size_t>(p), 0);
  sim::Machine machine(p, sim::CostModel::zero());
  machine.run([&](sim::Comm& c) {
    const int r = c.rank();
    const int n = c.size();
    const int right = (r + 1) % n;
    const int left = (r + n - 1) % n;
    for (int it = 0; it < 4; ++it) {
      std::vector<double> buf(8, static_cast<double>(r));
      c.send(right, 7, buf);
      (void)c.recv<double>(left, 7);
    }
    peak[static_cast<std::size_t>(r)] = c.memory_bytes();
  });
  std::size_t mx = 0;
  for (const std::size_t b : peak) mx = std::max(mx, b);
  return mx;
}

/// Not a timing check: asserts the per-rank transport footprint is a
/// function of touched peers, not world size. A dense per-rank table (the
/// pre-sparsification layout) makes the ratio track p (4x here); the
/// sparse maps keep it flat. 2x headroom tolerates allocator rounding.
bool check_memory() {
  const std::size_t b64 = ring_peak_bytes(64);
  const std::size_t b256 = ring_peak_bytes(256);
  const bool ok = b256 <= 2 * b64;
  std::printf("memory   p=64: %6zu B/rank  p=256: %6zu B/rank  "
              "ratio=%5.2fx (limit 2x)  %s\n",
              b64, b256,
              static_cast<double>(b256) / static_cast<double>(b64),
              ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  std::printf("# perf guard: optimized kernel vs reference, "
              "threshold +%d%% (PICPAR_PERF_GUARD_PCT)\n",
              guard_threshold_pct());
  bool ok = true;
  ok &= check_merge();
  ok &= check_scatter();
  ok &= check_index();
  ok &= check_memory();
  if (!ok) {
    std::printf("# PERF GUARD FAILED\n");
    return 1;
  }
  std::printf("# perf guard passed\n");
  return 0;
}
