// Figure 17: execution time for each iteration (irregular distribution,
// mesh = 128x64, particles = 32768, processors = 32), comparing static and
// periodic policies.
//
// Expected shape: the static curve ramps upward as particle subdomains
// drift; periodic curves are saw-teeth that reset at each redistribution.
#include <sstream>

#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig17_iteration_trace",
          "Figure 17: per-iteration execution time trace");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto stride = cli.flag<int>("stride", 10, "print every k-th iteration");
  auto jobs = cli.flag<int>("jobs", 1,
                            "policy configurations run concurrently "
                            "(0 = host cores)");
  auto trace_path = cli.flag<std::string>(
      "trace", "", "write a Chrome-trace JSON of the sar run to this path");
  auto metrics_path = cli.flag<std::string>(
      "trace-metrics", "",
      "write the sar run's metrics JSON to this path");
  auto phase_wall = cli.flag<bool>(
      "phase-wall", false,
      "trace the sar run and print wall-clock seconds per phase");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.iters(2000);

  bench::print_header("Figure 17 — per-iteration execution time",
                      "irregular, mesh=128x64, particles=32768, p=" +
                          std::to_string(*ranks));

  const std::uint64_t n = scale.particles(32768);
  std::vector<std::function<std::string()>> tasks;
  for (const std::string& policy :
       {std::string("static"),
        "periodic:" + std::to_string(scale.full ? 50 : 10), std::string("sar")}) {
    tasks.push_back([policy, n, iters, ranks = *ranks, stride = *stride,
                     trace = *trace_path, metrics = *metrics_path,
                     wall = *phase_wall] {
      auto params = bench::paper_params("irregular", 128, 64, n, ranks);
      params.iterations = iters;
      params.policy = policy;
      if (policy == "sar") {
        // The sar run is the paper's headline configuration; it is the one
        // exported when tracing is requested.
        params.trace.path = trace;
        params.trace.metrics_path = metrics;
        if (wall) params.trace.enabled = true;
      }
      const auto r = pic::run_pic(params);

      std::vector<double> x, y;
      for (int i = 0; i < iters; i += stride) {
        x.push_back(i);
        y.push_back(r.iters[static_cast<std::size_t>(i)].exec_seconds);
      }
      std::ostringstream os;
      print_series(os, "exec_time[" + policy + "]", x, y);
      os << "# total=" << bench::fmt_s(r.total_seconds)
         << " s, redistributions=" << r.redistributions << "\n";
      if (wall && !r.phase_wall_us.empty()) {
        // Host wall seconds per simulated phase, summed over ranks — the
        // hot-path numbers DESIGN.md §10's before/after table reports.
        os << "# phase-wall[" << policy << "]:";
        for (int ph = 0; ph < sim::kNumPhases; ++ph)
          os << ' ' << sim::phase_name(static_cast<sim::Phase>(ph)) << '='
             << bench::fmt_s(r.phase_wall_us[static_cast<std::size_t>(ph)] /
                             1e6)
             << "s";
        os << "\n";
      }
      os << "\n";
      return os.str();
    });
  }
  bench::run_jobs(*jobs, std::move(tasks));
  std::cout << "Expected: static ramps up; periodic/sar saw-tooth and stay "
               "low.\n";
  return 0;
}
