// Runtime speedup: wall-clock time of the parallel execution engine vs
// the sequential reference scheduler on the Figure-17 iteration trace at
// 4, 16, and 64 simulated ranks.
//
// The deterministic contract means the two modes produce bit-identical
// PicResults — the bench verifies that on every configuration and reports
// "identical=yes/no" next to the timings. Speedup expectations are
// conditional on host parallelism: simulated ranks can only overlap on
// real cores, so the header reports hardware_concurrency and the expected
// shape only applies on hosts with >= 4 cores. Timed runs execute
// serially (never under --jobs-style co-scheduling) so wall clocks are
// not distorted by contention.
#include <chrono>
#include <cmath>
#include <thread>

#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One timed run through the sweep driver. Deliberately uncached and
/// single-job: a cache hit would time a file read, and co-scheduling
/// distorts wall clocks. Note seq and par configs share one fingerprint
/// (exec mode is excluded from the content address — the determinism
/// contract), which is exactly why they must NOT go in one sweep: dedup
/// would collapse the pair this bench exists to compare.
pic::PicResult sweep_run(const pic::PicParams& params) {
  sweep::SweepOptions opt;  // jobs=1, no cache
  return sweep::run_sweep({{"timed", params}}, opt).outcomes.at(0).result;
}

bool identical(const pic::PicResult& a, const pic::PicResult& b) {
  if (a.total_seconds != b.total_seconds) return false;
  if (a.compute_seconds != b.compute_seconds) return false;
  if (a.redistributions != b.redistributions) return false;
  if (a.final_particles != b.final_particles) return false;
  if (a.field_energy != b.field_energy) return false;
  if (a.kinetic_energy != b.kinetic_energy) return false;
  if (a.machine.ranks.size() != b.machine.ranks.size()) return false;
  for (std::size_t i = 0; i < a.machine.ranks.size(); ++i) {
    if (a.machine.ranks[i].clock != b.machine.ranks[i].clock) return false;
    const auto ta = a.machine.ranks[i].stats.total();
    const auto tb = b.machine.ranks[i].stats.total();
    if (ta.msgs_sent != tb.msgs_sent || ta.bytes_sent != tb.bytes_sent ||
        ta.msgs_recv != tb.msgs_recv || ta.comm_seconds != tb.comm_seconds)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_runtime_speedup",
          "parallel engine vs sequential scheduler wall-clock");
  auto workers = cli.flag<int>("workers", 0,
                               "parallel-engine worker slots (0 = cores)");
  auto repeats = cli.flag<int>("repeats", 1, "timed repetitions per mode");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.iters(500);

  const unsigned cores = std::thread::hardware_concurrency();
  bench::print_header(
      "Runtime speedup — parallel engine vs sequential scheduler",
      "Fig-17 trace, irregular, mesh=128x64, iters=" + std::to_string(iters) +
          ", host cores=" + std::to_string(cores) +
          (cores >= 4 ? "" : " (expect ~1x below 4 cores)"));

  Table t({"ranks", "seq_wall_s", "par_wall_s", "speedup", "identical"});
  t.set_title("parallel vs sequential wall-clock");
  for (const int ranks : {4, 16, 64}) {
    auto params = bench::paper_params("irregular", 128, 64,
                                      scale.particles(32768), ranks);
    params.iterations = iters;
    params.policy = "sar";

    pic::PicResult seq, par;
    double seq_s = 0.0, par_s = 0.0;
    for (int rep = 0; rep < std::max(1, *repeats); ++rep) {
      auto p = params;
      p.exec.parallel = false;
      seq_s += wall_seconds([&] { seq = sweep_run(p); });
      p.exec.parallel = true;
      p.exec.workers = *workers;
      par_s += wall_seconds([&] { par = sweep_run(p); });
    }
    const int reps = std::max(1, *repeats);
    seq_s /= reps;
    par_s /= reps;
    t.row()
        .add(ranks)
        .add(bench::fmt_s(seq_s))
        .add(bench::fmt_s(par_s))
        .add(bench::fmt_s(par_s > 0 ? seq_s / par_s : 0.0))
        .add(identical(seq, par) ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nExpected: identical=yes everywhere; speedup grows with "
               "ranks on multi-core hosts (>=2x at 16 ranks on >=4 cores), "
               "~1x or below on single-core hosts where threads only add "
               "scheduling overhead.\n";
  return 0;
}
