// Robustness sweep beyond the paper: how the adaptive machinery behaves on
// an unreliable machine. Sweeps wire-fault intensity (corruption +
// duplication + jitter) and memory-fault rate across decision rules,
// reporting makespan, overhead, transport recovery traffic and
// checkpoint rollbacks. The zero-fault row doubles as the baseline: with
// the model disabled the run is bit-identical to a build without the
// fault subsystem.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_faults_recovery",
          "Fault injection and recovery across decision rules");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 400 : 100;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header(
      "Robustness — fault injection and recovery",
      std::to_string(iters) + " iterations, irregular blob, " +
          std::to_string(*ranks) + " ranks; wire faults recovered by the "
          "transport, memory faults by checkpoint rollback");

  struct FaultLevel {
    const char* label;
    double wire;    // corrupt/duplicate probability per message
    double memory;  // bit-flip probability per rank per iteration
  };
  const FaultLevel levels[] = {
      {"none", 0.0, 0.0},
      {"wire:1%", 0.01, 0.0},
      {"wire:5%", 0.05, 0.0},
      {"wire:5%+mem", 0.05, 0.02},
  };
  const std::vector<std::string> policies = {"static", "periodic:25", "sar"};

  Table table({"faults", "policy", "total (s)", "overhead (s)", "retries",
               "dup drops", "rollbacks", "particles ok"});
  table.set_title("Makespan and recovery work by fault level and policy");

  for (const auto& level : levels) {
    for (const auto& policy : policies) {
      auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
      params.iterations = iters;
      params.policy = policy;
      params.init.drift_ux = 0.12;
      params.init.drift_uy = 0.07;
      params.faults.corrupt_prob = level.wire;
      params.faults.duplicate_prob = level.wire;
      params.faults.latency_jitter_prob = level.wire;
      params.faults.latency_jitter_max_seconds = 1e-4;
      params.faults.max_retries = 20;
      params.faults.memory_fault_prob = level.memory;
      if (level.memory > 0.0) {
        params.validate.check_every = 1;
        params.validate.checkpoint_every = 1;
      }

      const auto r = pic::run_pic(params);
      const auto t = r.machine.transport_total();
      table.row()
          .add(level.label)
          .add(policy)
          .add(r.total_seconds, 2)
          .add(r.overhead_seconds(), 2)
          .add(t.retries)
          .add(t.dup_discards)
          .add(r.recoveries)
          .add(r.final_particles == r.initial_particles ? "yes" : "NO");
      std::cout << "." << std::flush;
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: recovery work grows with the fault rate while "
               "'particles ok' stays yes everywhere; sar keeps its edge over "
               "static under faults, paying only virtual-time overhead for "
               "retransmits and rollbacks.\n";
  return 0;
}
