// Robustness sweep beyond the paper: how the adaptive machinery behaves on
// an unreliable machine. Part 1 sweeps wire-fault intensity (corruption +
// duplication + jitter) and memory-fault rate across decision rules,
// reporting makespan, overhead, transport recovery traffic and
// checkpoint rollbacks. The zero-fault row doubles as the baseline: with
// the model disabled the run is bit-identical to a build without the
// fault subsystem. Part 2 injects fail-stop rank crashes (single, cascade
// of two, and mid-redistribution) per curve and policy, reporting MTTR,
// the recovered-particle fraction and post-recovery imbalance of the
// shrink-to-survivors path; --csv additionally writes the crash rows as a
// machine-readable artifact.
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

namespace {

/// End-of-iteration virtual times reconstructed from the per-iteration
/// records (exec_seconds chain from the post-init clock, which is the
/// makespan minus their sum when the run is crash-free).
std::vector<double> iter_end_times(const pic::PicResult& r) {
  double sum = 0.0;
  for (const auto& it : r.iters) sum += it.exec_seconds;
  std::vector<double> ends;
  ends.reserve(r.iters.size());
  double t = r.total_seconds - sum;
  for (const auto& it : r.iters) {
    t += it.exec_seconds;
    ends.push_back(t);
  }
  return ends;
}

/// Virtual time inside the redistribution phase of the first redistributing
/// iteration past the run's midpoint (falls back to 45% of the makespan).
double mid_redistribution_time(const pic::PicResult& r) {
  const auto ends = iter_end_times(r);
  for (std::size_t i = r.iters.size() / 2; i < r.iters.size(); ++i)
    if (r.iters[i].redistributed && r.iters[i].redist_seconds > 0.0)
      return ends[i] - 0.5 * r.iters[i].redist_seconds;
  return 0.45 * r.total_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_faults_recovery",
          "Fault injection and recovery across decision rules");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto csv_path = cli.flag<std::string>(
      "csv", "", "write crash-scenario rows to this CSV file");
  const auto sf = bench::sweep_flags(cli);
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 400 : 100;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header(
      "Robustness — fault injection and recovery",
      std::to_string(iters) + " iterations, irregular blob, " +
          std::to_string(*ranks) + " ranks; wire faults recovered by the "
          "transport, memory faults by checkpoint rollback");

  struct FaultLevel {
    const char* label;
    double wire;    // corrupt/duplicate probability per message
    double memory;  // bit-flip probability per rank per iteration
  };
  const FaultLevel levels[] = {
      {"none", 0.0, 0.0},
      {"wire:1%", 0.01, 0.0},
      {"wire:5%", 0.05, 0.0},
      {"wire:5%+mem", 0.05, 0.02},
  };
  const std::vector<std::string> policies = {"static", "periodic:25", "sar"};

  Table table({"faults", "policy", "total (s)", "overhead (s)", "retries",
               "dup drops", "rollbacks", "particles ok"});
  table.set_title("Makespan and recovery work by fault level and policy");

  std::vector<sweep::Job> fault_jobs;
  for (const auto& level : levels) {
    for (const auto& policy : policies) {
      auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
      params.iterations = iters;
      params.policy = policy;
      params.init.drift_ux = 0.12;
      params.init.drift_uy = 0.07;
      params.faults.corrupt_prob = level.wire;
      params.faults.duplicate_prob = level.wire;
      params.faults.latency_jitter_prob = level.wire;
      params.faults.latency_jitter_max_seconds = 1e-4;
      params.faults.max_retries = 20;
      params.faults.memory_fault_prob = level.memory;
      if (level.memory > 0.0) {
        params.validate.check_every = 1;
        params.validate.checkpoint_every = 1;
      }
      fault_jobs.push_back(
          {std::string(level.label) + "/" + policy, params});
    }
  }
  const auto fault_report = bench::run_sweep_jobs(fault_jobs, sf);

  std::size_t row = 0;
  for (const auto& level : levels) {
    for (const auto& policy : policies) {
      const auto& r = fault_report.outcomes[row++].result;
      const auto t = r.machine.transport_total();
      table.row()
          .add(level.label)
          .add(policy)
          .add(r.total_seconds, 2)
          .add(r.overhead_seconds(), 2)
          .add(t.retries)
          .add(t.dup_discards)
          .add(r.recoveries)
          .add(r.final_particles == r.initial_particles ? "yes" : "NO");
      std::cout << "." << std::flush;
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: recovery work grows with the fault rate while "
               "'particles ok' stays yes everywhere; sar keeps its edge over "
               "static under faults, paying only virtual-time overhead for "
               "retransmits and rollbacks.\n";

  // ---- Part 2: fail-stop crashes and shrink-to-survivors recovery ----
  struct CrashScenario {
    const char* label;
    int ncrashes;
    bool mid_redist;  // place the (single) crash inside a redistribution
  };
  const CrashScenario scenarios[] = {
      {"crash:1", 1, false},
      {"crash:2", 2, false},
      {"crash:redist", 1, true},
  };
  const std::vector<sfc::CurveKind> curves = {sfc::CurveKind::kHilbert,
                                              sfc::CurveKind::kMorton};
  const std::vector<std::string> crash_policies = {"periodic:25", "sar"};

  Table ctable({"scenario", "curve", "policy", "crashes", "recoveries",
                "MTTR (s)", "recovered", "imbalance", "total (s)",
                "clean (s)"});
  ctable.set_title(
      "Fail-stop crashes — shrink-to-survivors recovery by curve and policy");
  std::ostringstream csv;
  csv << "scenario,curve,policy,ranks,crashes,recoveries,mttr_seconds,"
         "lost_particles,restored_particles,recovered_fraction,"
         "final_particles,initial_particles,final_imbalance,final_ranks,"
         "total_seconds,clean_seconds\n";

  // Clean (crash-free) baselines first — their makespans and timelines
  // place the scheduled crashes — then the crash scenarios as a second
  // sweep. Both go through the cached driver: the baselines are exactly
  // the kind of run a shared cache directory amortizes across benches.
  std::vector<sweep::Job> clean_jobs;
  for (const auto curve : curves) {
    for (const auto& policy : crash_policies) {
      auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
      params.iterations = iters;
      params.policy = policy;
      params.curve = curve;
      params.init.drift_ux = 0.12;
      params.init.drift_uy = 0.07;
      params.validate.checkpoint_every = 10;
      clean_jobs.push_back(
          {std::string("clean/") + sfc::curve_kind_name(curve) + "/" + policy,
           params});
    }
  }
  const auto clean_report = bench::run_sweep_jobs(clean_jobs, sf);

  std::vector<sweep::Job> crash_jobs;
  for (std::size_t c = 0; c < clean_jobs.size(); ++c) {
    const auto& params = clean_jobs[c].params;
    const auto& clean = clean_report.outcomes[c].result;
    const double T = clean.total_seconds;
    for (const auto& sc : scenarios) {
      auto p = params;
      if (sc.mid_redist) {
        p.faults.crash_schedule = {
            {*ranks / 2, mid_redistribution_time(clean)}};
      } else if (sc.ncrashes == 1) {
        p.faults.crash_schedule = {{*ranks / 3, 0.45 * T}};
      } else {
        p.faults.crash_schedule = {{*ranks / 3, 0.3 * T},
                                   {2 * *ranks / 3, 0.6 * T}};
      }
      crash_jobs.push_back(
          {std::string(sc.label) + "/" + sfc::curve_kind_name(p.curve) +
               "/" + p.policy,
           p});
    }
  }
  const auto crash_report = bench::run_sweep_jobs(crash_jobs, sf);

  std::size_t crash_row = 0;
  for (std::size_t c = 0; c < clean_jobs.size(); ++c) {
    const auto curve = clean_jobs[c].params.curve;
    const auto& policy = clean_jobs[c].params.policy;
    const double T = clean_report.outcomes[c].result.total_seconds;
    for (const auto& sc : scenarios) {
      const auto& r = crash_report.outcomes[crash_row++].result;
      const double recovered_frac =
          r.crash_lost_particles
              ? static_cast<double>(r.crash_restored_particles) /
                    static_cast<double>(r.crash_lost_particles)
              : 1.0;
      ctable.row()
          .add(sc.label)
          .add(sfc::curve_kind_name(curve))
          .add(policy)
          .add(r.crash_count)
          .add(r.crash_recoveries)
          .add(r.mttr_seconds_total, 3)
          .add(recovered_frac, 3)
          .add(r.final_imbalance, 2)
          .add(r.total_seconds, 2)
          .add(T, 2);
      csv << sc.label << ',' << sfc::curve_kind_name(curve) << ','
          << policy << ',' << *ranks << ',' << r.crash_count << ','
          << r.crash_recoveries << ',' << r.mttr_seconds_total << ','
          << r.crash_lost_particles << ',' << r.crash_restored_particles
          << ',' << recovered_frac << ',' << r.final_particles << ','
          << r.initial_particles << ',' << r.final_imbalance << ','
          << r.final_ranks << ',' << r.total_seconds << ',' << T << '\n';
      std::cout << "." << std::flush;
    }
  }
  std::cout << '\n';
  ctable.print(std::cout);
  std::cout << "\nExpected: every scenario completes on the survivor group "
               "with recovered = 1.000 (all checkpointed particles restored), "
               "MTTR dominated by the detection lease plus one restore-and-"
               "redistribute, and post-recovery imbalance pulled back toward "
               "1 by the next redistribution.\n";

  if (!csv_path->empty()) {
    std::ofstream f(*csv_path, std::ios::trunc);
    if (!f) {
      std::cerr << "cannot write " << *csv_path << '\n';
      return 1;
    }
    f << csv.str();
    std::cout << "\ncrash-scenario CSV written to " << *csv_path << '\n';
  }
  return 0;
}
