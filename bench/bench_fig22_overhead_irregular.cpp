// Figure 22: overhead (execution time - computation time) of 200
// iterations for the IRREGULAR (center-concentrated) distribution,
// Hilbert vs snakelike indexing, P in {32, 64, 128}.
//
// Expected shape: same as Fig 21 but with larger absolute overheads; the
// Hilbert advantage is more pronounced because compact subdomains matter
// more when particles cluster.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig22_overhead_irregular",
          "Figure 22: overhead for the irregular distribution");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 50;

  bench::print_header("Figure 22 — overhead, irregular distribution",
                      "overhead = execution - computation (modeled s)");

  struct Config {
    std::uint32_t nx, ny;
    std::uint64_t n;
  };
  const Config configs[] = {
      {256, 128, 32768}, {256, 128, 65536}, {512, 256, 65536},
      {512, 256, 131072}};

  Table table({"mesh", "particles", "indexing", "P", "overhead (s)",
               "redist share"});
  table.set_title("Fig 22: overhead of " + std::to_string(iters) +
                  " iterations, irregular");

  for (const auto& cfg : configs) {
    const auto n = scale.particles(cfg.n);
    for (const auto curve : {sfc::CurveKind::kHilbert, sfc::CurveKind::kSnake}) {
      for (int p : {32, 64, 128}) {
        auto params = bench::paper_params("irregular", cfg.nx, cfg.ny, n, p);
        params.iterations = iters;
        params.curve = curve;
        const auto r = pic::run_pic(params);
        const double share =
            r.overhead_seconds() > 0.0
                ? r.redist_seconds_total / r.overhead_seconds()
                : 0.0;
        table.row()
            .add(std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny))
            .add(static_cast<std::size_t>(n))
            .add(sfc::curve_kind_name(curve))
            .add(static_cast<long long>(p))
            .add(r.overhead_seconds(), 2)
            .add(share, 3);
        std::cout << "." << std::flush;
      }
    }
    std::cout << '\n';
  }
  table.print(std::cout);
  std::cout << "\nExpected: hilbert overhead <= snake (except possibly the "
               "smallest particles-per-processor corner); redistribution "
               "share < 0.2 at P=128.\n";
  return 0;
}
