// Ablation: sensitivity of the bucket incremental sort to L (buckets per
// rank, Fig 12) and to the sample-sort oversampling factor. L trades
// bucket-boundary bookkeeping against the size of the region a moved
// particle dirties: L=1 degenerates to re-sorting the whole local array,
// huge L makes every small move cross bucket boundaries.
#include "common.hpp"

#include "core/partitioner.hpp"
#include "particles/init.hpp"
#include "particles/pusher.hpp"
#include "sfc/hilbert.hpp"
#include "sim/comm.hpp"

using namespace picpar;

namespace {

struct Cost {
  double seconds = 0.0;
  std::uint64_t ops = 0;
};

Cost measure(int buckets, int samples, int ranks, std::uint64_t n) {
  const mesh::GridDesc grid(128, 64);
  const sfc::HilbertCurve curve(128, 64);
  particles::InitParams init;
  init.total = n;
  init.drift_ux = 0.12;
  init.drift_uy = 0.07;
  const auto global =
      particles::generate(particles::Distribution::kGaussian, grid, init);

  std::vector<Cost> per_rank(static_cast<std::size_t>(ranks));
  sim::Machine machine(ranks, sim::CostModel::cm5());
  machine.run([&](sim::Comm& comm) {
    core::PartitionerConfig cfg;
    cfg.buckets_per_rank = buckets;
    cfg.samples_per_rank = samples;
    core::ParticlePartitioner part(curve, grid, cfg);

    particles::ParticleArray mine(global.charge(), global.mass());
    const auto b = static_cast<std::uint64_t>(comm.rank()) * n /
                   static_cast<std::uint64_t>(ranks);
    const auto e = static_cast<std::uint64_t>(comm.rank() + 1) * n /
                   static_cast<std::uint64_t>(ranks);
    for (std::uint64_t i = b; i < e; ++i)
      mine.push_back(global.rec(static_cast<std::size_t>(i)));
    part.assign_keys(comm, mine);
    part.distribute(comm, mine);

    auto& cost = per_rank[static_cast<std::size_t>(comm.rank())];
    for (int round = 0; round < 12; ++round) {
      for (int s = 0; s < 10; ++s)
        for (std::size_t i = 0; i < mine.size(); ++i)
          particles::advance_position(grid, mine, i, 0.5);
      part.assign_keys(comm, mine);
      const auto rep = part.redistribute(comm, mine);
      cost.seconds += comm.allreduce_max(rep.seconds);
      cost.ops += rep.work.total_ops();
    }
  });
  return per_rank[0];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ablation_buckets",
          "Bucket count / oversampling sensitivity of the incremental sort");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const std::uint64_t n = scale.particles(32768);

  bench::print_header("Ablation — buckets per rank (L) and oversampling",
                      "12 redistributions of a drifting irregular blob, p=" +
                          std::to_string(*ranks));

  Table lt({"L (buckets/rank)", "redistribution cost (s)", "max-rank ops"});
  lt.set_title("Bucket-count sensitivity (samples=32)");
  for (int L : {1, 4, 16, 64, 256}) {
    const auto c = measure(L, 32, *ranks, n);
    lt.row()
        .add(static_cast<long long>(L))
        .add(c.seconds, 3)
        .add(static_cast<std::size_t>(c.ops));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  lt.print(std::cout);

  Table st({"samples/rank", "redistribution cost (s)"});
  st.set_title("Oversampling sensitivity (L=16)");
  for (int s : {4, 16, 32, 128}) {
    const auto c = measure(16, s, *ranks, n);
    st.row().add(static_cast<long long>(s)).add(c.seconds, 3);
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  st.print(std::cout);
  std::cout << "\nExpected: moderate L cheapest; oversampling matters only "
               "for the initial distribution's balance.\n";
  return 0;
}
