// Figure 11: particle redistribution via bucket-based incremental sorting
// vs running the full distribution algorithm at every redistribution.
//
// We run the same drifting irregular simulation twice with periodic
// redistribution; one partitioner uses the incremental path, the other a
// full sample sort each time. Reported: per-redistribution cost (modeled
// seconds), sorting work (comparisons + moves) and particles moved.
//
// Expected shape: incremental cheaper on every redistribution — it
// exploits the previous sorted order, so per-bucket sorts are mostly
// sortedness checks.
#include "common.hpp"

#include "core/partitioner.hpp"
#include "particles/init.hpp"
#include "particles/pusher.hpp"
#include "pic/simulation.hpp"
#include "sfc/hilbert.hpp"
#include "sim/comm.hpp"
#include "util/rng.hpp"

using namespace picpar;

namespace {

struct Totals {
  double seconds = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t moved = 0;
  int rounds = 0;
};

/// Replay a drift workload and redistribute every `period` steps with
/// either the incremental or the full algorithm.
Totals measure(bool incremental, int ranks, std::uint64_t n, int rounds,
               int period) {
  const mesh::GridDesc grid(128, 64);
  const sfc::HilbertCurve curve(128, 64);
  particles::InitParams init;
  init.total = n;
  init.drift_ux = 0.12;
  init.drift_uy = 0.07;
  const auto global =
      particles::generate(particles::Distribution::kGaussian, grid, init);

  std::vector<Totals> per_rank(static_cast<std::size_t>(ranks));
  sim::Machine machine(ranks, sim::CostModel::cm5());
  machine.run([&](sim::Comm& comm) {
    core::ParticlePartitioner part(curve, grid);
    particles::ParticleArray mine(global.charge(), global.mass());
    const auto b = static_cast<std::uint64_t>(comm.rank()) * n /
                   static_cast<std::uint64_t>(ranks);
    const auto e = static_cast<std::uint64_t>(comm.rank() + 1) * n /
                   static_cast<std::uint64_t>(ranks);
    for (std::uint64_t i = b; i < e; ++i)
      mine.push_back(global.rec(static_cast<std::size_t>(i)));

    part.assign_keys(comm, mine);
    part.distribute(comm, mine);

    auto& t = per_rank[static_cast<std::size_t>(comm.rank())];
    const double dt = 0.5;
    for (int round = 0; round < rounds; ++round) {
      // Drift particles `period` steps (kinematics only — the sort cost
      // is what Fig 11 studies).
      for (int s = 0; s < period; ++s)
        for (std::size_t i = 0; i < mine.size(); ++i)
          particles::advance_position(grid, mine, i, dt);
      part.assign_keys(comm, mine);

      const auto rep = incremental ? part.redistribute(comm, mine)
                                   : part.distribute(comm, mine);
      t.seconds += comm.allreduce_max(rep.seconds);
      t.ops += rep.work.total_ops();
      t.moved += rep.sent_particles;
      ++t.rounds;
    }
  });
  Totals out = per_rank[0];
  for (int r = 1; r < ranks; ++r) {
    out.ops = std::max(out.ops, per_rank[static_cast<std::size_t>(r)].ops);
    out.moved += per_rank[static_cast<std::size_t>(r)].moved;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig11_incremental_sort",
          "Figure 11: incremental vs full redistribution");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const std::uint64_t n = scale.particles(32768);
  const int rounds = scale.full ? 40 : 10;
  const int period = 10;

  bench::print_header("Figure 11 — incremental vs full redistribution",
                      std::to_string(rounds) + " redistributions, every " +
                          std::to_string(period) + " drift steps");

  Table table({"algorithm", "redistributions", "total cost (s)",
               "cost/redist (s)", "max-rank sort ops", "particles moved"});
  table.set_title("Fig 11: redistribution algorithm comparison");

  for (bool inc : {false, true}) {
    const auto t = measure(inc, *ranks, n, rounds, period);
    table.row()
        .add(inc ? "bucket incremental" : "full distribution")
        .add(static_cast<long long>(t.rounds))
        .add(t.seconds, 3)
        .add(t.seconds / t.rounds, 4)
        .add(static_cast<std::size_t>(t.ops))
        .add(static_cast<std::size_t>(t.moved));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: incremental cost per redistribution below the "
               "full distribution's.\n";
  return 0;
}
