// Ablation: redistribution decision rules beyond the paper's Fig 20 —
// static, the periodic family, the paper's SAR rule (Eq. 1), and a simple
// relative-rise threshold rule. Evaluated on three workload intensities
// (how fast the particle population drifts) to test robustness: a tuned
// period that wins on one drift speed loses on another, while SAR adapts.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_ablation_policies",
          "Decision-rule robustness across drift speeds");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 400 : 150;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header("Ablation — redistribution decision rules",
                      std::to_string(iters) +
                          " iterations, irregular blob, three drift speeds");

  const double drifts[] = {0.04, 0.12, 0.3};
  const std::vector<std::string> policies = {
      "static",      "periodic:50", "periodic:10", "sar", "threshold:1.05"};

  Table table({"policy", "slow drift (s)", "medium drift (s)",
               "fast drift (s)", "redists (s/m/f)"});
  table.set_title("Total time by decision rule and drift speed");

  for (const auto& policy : policies) {
    auto& row = table.row().add(policy);
    std::string redists;
    for (const double drift : drifts) {
      auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
      params.iterations = iters;
      params.policy = policy;
      params.init.drift_ux = drift;
      params.init.drift_uy = drift * 0.6;
      const auto r = pic::run_pic(params);
      row.add(r.total_seconds, 2);
      redists += (redists.empty() ? "" : "/") + std::to_string(r.redistributions);
      std::cout << "." << std::flush;
    }
    row.add(redists);
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: no single period wins at every drift speed; sar "
               "tracks the best rule everywhere without tuning.\n";
  return 0;
}
