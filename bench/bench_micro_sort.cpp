// Micro-benchmarks: local sorting building blocks of the redistribution
// algorithms — full key sort, adaptive record sort on (nearly) sorted
// input, and the two-run merge.
#include <benchmark/benchmark.h>

#include "core/sort_util.hpp"
#include "util/rng.hpp"

namespace {

using namespace picpar;
using core::merge_runs;
using core::sort_by_key;
using core::sort_records;
using particles::ParticleArray;
using particles::ParticleRec;

ParticleArray random_particles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ParticleArray p(-1.0, 1.0);
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ParticleRec r;
    r.key = rng.below(1u << 20);
    p.push_back(r);
  }
  return p;
}

void BM_SortByKeyRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto p = random_particles(n, 3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sort_by_key(p));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SortByKeyRandom)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SortRecordsSorted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<ParticleRec> recs(n);
  for (std::size_t i = 0; i < n; ++i) recs[i].key = i;
  for (auto _ : state) benchmark::DoNotOptimize(sort_records(recs));
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SortRecordsSorted)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SortRecordsNearlySorted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ParticleRec> recs(n);
    for (std::size_t i = 0; i < n; ++i)
      recs[i].key = 10 * i + rng.below(40);  // local disorder only
    state.ResumeTiming();
    benchmark::DoNotOptimize(sort_records(recs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_SortRecordsNearlySorted)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_MergeTwoRuns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::vector<ParticleRec>> runs(2);
    for (std::size_t i = 0; i < n; ++i) {
      ParticleRec r;
      r.key = 2 * i;
      runs[0].push_back(r);
      r.key = 2 * i + 1;
      runs[1].push_back(r);
    }
    ParticleArray out(-1.0, 1.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(merge_runs(runs, out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(2 * n));
}
BENCHMARK(BM_MergeTwoRuns)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
