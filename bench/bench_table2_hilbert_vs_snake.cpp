// Table 2: computational time (modeled seconds) of 200 iterations —
// Hilbert vs snakelike indexing, uniform and irregular distributions,
// meshes 256x128 and 512x256, P in {32, 64, 128}, dynamic (SAR)
// redistribution for both indexings.
//
// Expected shape: Hilbert <= snake in (nearly) all cases; times roughly
// halve as P doubles; paper anchors (CM-5, 32 procs): uniform 256x128/32Ki
// ~72 s, irregular ~75 s.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_table2_hilbert_vs_snake",
          "Table 2: Hilbert vs snakelike indexing, 200 iterations");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 50;

  bench::print_header("Table 2 — computational time of " +
                          std::to_string(iters) + " iterations",
                      "dynamic (SAR) redistribution; modeled CM-5 seconds");

  struct Config {
    std::uint32_t nx, ny;
    std::uint64_t n;
  };
  const Config configs[] = {
      {256, 128, 32768}, {256, 128, 65536}, {512, 256, 65536},
      {512, 256, 131072}};
  const int procs[] = {32, 64, 128};

  Table table({"distribution", "mesh", "particles", "indexing", "P=32 (s)",
               "P=64 (s)", "P=128 (s)"});
  table.set_title("Table 2: Hilbert vs snakelike, " + std::to_string(iters) +
                  " iterations");

  for (const std::string& dist : {std::string("uniform"), std::string("irregular")}) {
    for (const auto& cfg : configs) {
      const auto n = scale.particles(cfg.n);
      for (const auto curve :
           {sfc::CurveKind::kHilbert, sfc::CurveKind::kSnake}) {
        auto& row = table.row()
                        .add(dist)
                        .add(std::to_string(cfg.nx) + "x" + std::to_string(cfg.ny))
                        .add(static_cast<std::size_t>(n))
                        .add(sfc::curve_kind_name(curve));
        for (int p : procs) {
          auto params = bench::paper_params(dist, cfg.nx, cfg.ny, n, p);
          params.iterations = iters;
          params.curve = curve;
          params.policy = "sar";
          const auto r = pic::run_pic(params);
          row.add(r.total_seconds, 2);
          std::cout << "." << std::flush;
        }
      }
      std::cout << '\n';
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors (200 iters, CM-5): uniform 256x128/32768 = "
               "72.47 s @32; irregular 256x128/32768 = 74.88/39.61/20.92 s "
               "@32/64/128.\n"
               "Expected: hilbert <= snake almost everywhere; ~2x speedup "
               "per doubling of P.\n";
  return 0;
}
