// Figure 19: maximum number of messages sent and received by any processor
// in the scatter phase, per iteration (irregular, 128x64, 32768 particles,
// 32 processors).
//
// Expected shape: without redistribution a processor's particle subdomain
// eventually overlaps many mesh subdomains, so its scatter message count
// climbs toward p-1; redistribution keeps it near the neighbor count.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig19_scatter_messages",
          "Figure 19: max scatter-phase messages sent/received per iteration");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto stride = cli.flag<int>("stride", 10, "print every k-th iteration");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.iters(2000);

  bench::print_header("Figure 19 — max scatter message count",
                      "irregular, mesh=128x64, particles=32768, p=" +
                          std::to_string(*ranks));

  const std::uint64_t n = scale.particles(32768);
  for (const std::string& policy :
       {std::string("static"),
        "periodic:" + std::to_string(scale.full ? 50 : 10)}) {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    params.policy = policy;
    const auto r = pic::run_pic(params);

    std::vector<double> x, sent, recv;
    for (int i = 0; i < iters; i += *stride) {
      const auto& it = r.iters[static_cast<std::size_t>(i)];
      x.push_back(i);
      sent.push_back(static_cast<double>(it.scatter_max_sent_msgs));
      recv.push_back(static_cast<double>(it.scatter_max_recv_msgs));
    }
    print_series(std::cout, "max_sent_msgs[" + policy + "]", x, sent);
    print_series(std::cout, "max_recv_msgs[" + policy + "]", x, recv);
    std::cout << '\n';
  }
  std::cout << "Expected: static message counts climb; periodic stays flat.\n";
  return 0;
}
