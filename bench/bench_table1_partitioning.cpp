// Table 1: computation load and communication patterns of the three domain
// partitioning strategies (Grid / Particle / Independent) under the two
// particle movement methods (direct Eulerian / direct Lagrangian).
//
// The paper's table is analytic; this bench quantifies it: for each
// strategy we measure (a) field-solve load balance (grid points per rank),
// (b) particle load balance, initially and after drifting, and (c) the
// communication each arrangement generates.
#include "common.hpp"

#include "pic/eulerian.hpp"
#include "pic/simulation.hpp"
#include "util/stats.hpp"

using namespace picpar;

namespace {

double particle_imbalance_after(const pic::PicResult& r) {
  std::vector<double> compute;
  for (const auto& rank : r.machine.ranks)
    compute.push_back(rank.stats.total().compute_seconds);
  return imbalance(compute).factor();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_table1_partitioning",
          "Table 1: partitioning strategies compared empirically");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  // Long enough for the static case's misalignment to show in the totals.
  const int iters = scale.full ? 600 : 200;

  bench::print_header("Table 1 — partitioning strategy comparison",
                      "irregular distribution, mesh=128x64, p=" +
                          std::to_string(*ranks));

  const std::uint64_t n = scale.particles(32768);

  Table table({"strategy", "movement", "grid imbalance", "compute imbalance",
               "total (s)", "overhead (s)"});
  table.set_title("Table 1 (empirical): load balance and communication");

  // --- Grid partitioning + direct Eulerian (Gledhill & Storey) ---
  {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    const auto r = pic::run_eulerian(params);
    table.row()
        .add("grid")
        .add("eulerian")
        .add(1.0, 2)  // block mesh decomposition is exactly balanced
        .add(particle_imbalance_after(r), 2)
        .add(r.total_seconds, 2)
        .add(r.overhead_seconds(), 2);
  }
  std::cout << "." << std::flush;

  // --- Particle partitioning + direct Lagrangian, no realignment ---
  // Particles balanced once, never moved; grid follows the particles is
  // approximated by a static independent run whose alignment decays.
  {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    params.policy = "static";
    const auto r = pic::run_pic(params);
    table.row()
        .add("particle")
        .add("lagrangian (static)")
        .add(1.0, 2)
        .add(particle_imbalance_after(r), 2)
        .add(r.total_seconds, 2)
        .add(r.overhead_seconds(), 2);
  }
  std::cout << "." << std::flush;

  // --- Independent partitioning + direct Lagrangian + dynamic alignment
  //     (the paper's proposal) ---
  {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    params.policy = "sar";
    const auto r = pic::run_pic(params);
    table.row()
        .add("independent")
        .add("lagrangian + sar")
        .add(1.0, 2)
        .add(particle_imbalance_after(r), 2)
        .add(r.total_seconds, 2)
        .add(r.overhead_seconds(), 2);
  }
  std::cout << '\n';

  table.print(std::cout);
  std::cout << "\nExpected: eulerian compute imbalance >> 1 on the irregular "
               "blob; lagrangian variants stay ~1; independent + sar has "
               "the lowest total.\n";
  return 0;
}
