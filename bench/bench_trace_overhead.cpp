// Cost of the deterministic tracing layer (src/trace).
//
// Two claims to verify. First, the tracer is opt-in with zero cost on the
// fast path: with tracing disabled, the simulated run — virtual makespan,
// per-phase traffic, physics — is bit-identical to a build without the
// subsystem, and the wall-clock difference is noise. Second, when enabled,
// buffering spans/flows/marks and rendering the Chrome-trace JSON costs a
// bounded wall-clock factor, and virtual time is untouched in every mode
// (the tracer rides on real time, not simulated time).
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

namespace {

double wall_seconds(const pic::PicParams& params, pic::PicResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  auto r = pic::run_pic(params);
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(r);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_trace_overhead",
          "Wall-clock cost of deterministic tracing");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto out_path = cli.flag<std::string>(
      "out", "trace_overhead.trace.json",
      "Chrome-trace path for the export mode (deleted afterwards)");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 50;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header(
      "Trace layer — overhead of span/flow/mark buffering and export",
      std::to_string(iters) + " iterations, irregular blob, " +
          std::to_string(*ranks) +
          " ranks; virtual-time columns must be identical in every row");

  auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
  params.iterations = iters;
  params.policy = "sar";
  params.init.drift_ux = 0.12;
  params.init.drift_uy = 0.07;

  struct Mode {
    const char* label;
    bool trace;
    bool export_files;
  };
  const Mode modes[] = {
      {"off", false, false},
      {"trace", true, false},
      {"trace+export", true, true},
  };

  Table table({"mode", "wall (s)", "slowdown", "virtual total (s)", "events",
               "virtual identical"});
  table.set_title("Tracer cost by mode (export also writes the JSON file)");

  double wall_off = 0.0;
  double virtual_off = 0.0;
  for (const auto& mode : modes) {
    params.trace = pic::TraceParams{};
    params.trace.enabled = mode.trace;
    if (mode.export_files) params.trace.path = *out_path;
    pic::PicResult r;
    // Median-of-3 wall time: these runs are short enough to jitter.
    double best = wall_seconds(params, &r);
    for (int rep = 0; rep < 2; ++rep)
      best = std::min(best, wall_seconds(params, nullptr));
    if (!mode.trace) {
      wall_off = best;
      virtual_off = r.total_seconds;
    }
    table.row()
        .add(mode.label)
        .add(best, 3)
        .add(wall_off > 0.0 ? best / wall_off : 1.0, 2)
        .add(r.total_seconds, 2)
        .add(r.traced ? std::to_string(r.trace_events) : std::string("-"))
        .add(r.total_seconds == virtual_off ? "yes" : "NO");
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  std::remove(out_path->c_str());
  table.print(std::cout);
  std::cout << "\nExpected: identical 'virtual total' across modes (the "
               "tracer never touches simulated time) and a small "
               "constant-factor wall-clock cost when tracing, slightly "
               "higher with the JSON export.\n";
  return 0;
}
