// Ablation: the paper's Section 3 narrative, measured — replicated-grid
// Lagrangian (Lubeck & Faber) degrades with machine size because of global
// operations over the full mesh; grid-partitioned Eulerian suffers load
// imbalance on irregular inputs; independent partitioning with dynamic
// alignment scales. Also ablates the grid decomposition (block vs curve)
// and the dedup policy (hash vs direct), and shows how the trade-off moves
// on a modern-cluster cost model.
#include "common.hpp"

#include "pic/eulerian.hpp"
#include "pic/replicated.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_ablation_baselines",
          "Baselines and design-choice ablations");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 100 : 25;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header("Ablation — baselines and design choices",
                      "irregular, mesh=128x64, " + std::to_string(iters) +
                          " iterations");

  Table table({"variant", "P", "total (s)", "compute (s)", "overhead (s)"});
  table.set_title("Baselines across machine sizes");
  for (int p : {8, 32, 128}) {
    auto params = bench::paper_params("irregular", 128, 64, n, p);
    params.iterations = iters;

    params.policy = "sar";
    const auto indep = pic::run_pic(params);
    table.row().add("independent+sar").add(static_cast<long long>(p))
        .add(indep.total_seconds, 2).add(indep.compute_seconds, 2)
        .add(indep.overhead_seconds(), 2);

    const auto repl = pic::run_replicated(params);
    table.row().add("replicated grid").add(static_cast<long long>(p))
        .add(repl.total_seconds, 2).add(repl.compute_seconds, 2)
        .add(repl.overhead_seconds(), 2);

    const auto eul = pic::run_eulerian(params);
    table.row().add("eulerian grid-part").add(static_cast<long long>(p))
        .add(eul.total_seconds, 2).add(eul.compute_seconds, 2)
        .add(eul.overhead_seconds(), 2);
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  table.print(std::cout);

  Table abl({"ablation", "setting", "total (s)", "overhead (s)"});
  abl.set_title("Design-choice ablations (P=32)");
  {
    auto params = bench::paper_params("irregular", 128, 64, n, 32);
    params.iterations = iters;
    for (const auto gd : {pic::GridDecomp::kCurve, pic::GridDecomp::kBlock}) {
      params.grid_decomp = gd;
      const auto r = pic::run_pic(params);
      abl.row().add("grid decomposition")
          .add(gd == pic::GridDecomp::kCurve ? "curve (aligned)" : "block")
          .add(r.total_seconds, 2).add(r.overhead_seconds(), 2);
      std::cout << "." << std::flush;
    }
    params.grid_decomp = pic::GridDecomp::kCurve;
    for (const auto dp : {core::DedupPolicy::kDirect, core::DedupPolicy::kHash}) {
      params.dedup = dp;
      const auto r = pic::run_pic(params);
      abl.row().add("dedup table").add(core::dedup_policy_name(dp))
          .add(r.total_seconds, 2).add(r.overhead_seconds(), 2);
      std::cout << "." << std::flush;
    }
    params.dedup = core::DedupPolicy::kDirect;
    for (const auto curve :
         {sfc::CurveKind::kHilbert, sfc::CurveKind::kMorton,
          sfc::CurveKind::kSnake, sfc::CurveKind::kRowMajor}) {
      params.curve = curve;
      const auto r = pic::run_pic(params);
      abl.row().add("indexing curve").add(sfc::curve_kind_name(curve))
          .add(r.total_seconds, 2).add(r.overhead_seconds(), 2);
      std::cout << "." << std::flush;
    }
    params.curve = sfc::CurveKind::kHilbert;
    params.machine = sim::CostModel::modern_cluster();
    const auto modern = pic::run_pic(params);
    abl.row().add("cost model").add("modern cluster")
        .add(modern.total_seconds, 4).add(modern.overhead_seconds(), 4);
  }
  std::cout << '\n';
  abl.print(std::cout);
  std::cout << "\nExpected: replicated overhead grows with P; eulerian "
               "compute dominated by the most loaded rank; hilbert best "
               "among curves; modern cluster shifts cost toward latency.\n";
  return 0;
}
