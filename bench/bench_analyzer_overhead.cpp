// Cost of the happens-before analysis layer (src/analysis).
//
// Two claims to verify. First, the analyzer is opt-in with zero cost on
// the fast path: with analysis disabled, the simulated run — virtual
// makespan, per-phase traffic, physics — is bit-identical to a build
// without the subsystem, and the wall-clock difference is noise. Second,
// when enabled, the wall-clock overhead of vector-clock maintenance and
// race scanning stays a modest multiple even on communication-heavy runs,
// and the virtual-time results are untouched either way (the analyzer
// rides on real time, not simulated time).
#include <chrono>

#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

namespace {

double wall_seconds(const pic::PicParams& params, pic::PicResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  auto r = pic::run_pic(params);
  const auto t1 = std::chrono::steady_clock::now();
  if (out) *out = std::move(r);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_analyzer_overhead",
          "Wall-clock cost of happens-before analysis");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 200 : 50;
  const std::uint64_t n = scale.particles(32768);

  bench::print_header(
      "Analysis layer — overhead of vector clocks and race scanning",
      std::to_string(iters) + " iterations, irregular blob, " +
          std::to_string(*ranks) +
          " ranks; virtual-time columns must be identical in every row");

  auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
  params.iterations = iters;
  params.policy = "sar";
  params.init.drift_ux = 0.12;
  params.init.drift_uy = 0.07;

  struct Mode {
    const char* label;
    bool analyze;
    bool audit;
  };
  const Mode modes[] = {
      {"off", false, false},
      {"analyze", true, false},
      {"analyze+audit", true, true},
  };

  Table table({"mode", "wall (s)", "slowdown", "virtual total (s)",
               "findings", "audit"});
  table.set_title("Analyzer cost by mode (audit runs the program twice)");

  double wall_off = 0.0;
  for (const auto& mode : modes) {
    params.analyze.enabled = mode.analyze;
    params.analyze.audit_determinism = mode.audit;
    pic::PicResult r;
    // Median-of-3 wall time: these runs are short enough to jitter.
    double best = wall_seconds(params, &r);
    for (int rep = 0; rep < 2; ++rep)
      best = std::min(best, wall_seconds(params, nullptr));
    if (!mode.analyze) wall_off = best;
    const char* audit_col =
        r.determinism_audit < 0 ? "-" : (r.determinism_audit == 1 ? "pass" : "FAIL");
    table.row()
        .add(mode.label)
        .add(best, 3)
        .add(wall_off > 0.0 ? best / wall_off : 1.0, 2)
        .add(r.total_seconds, 2)
        .add(r.analysis_findings < 0 ? std::string("-")
                                     : std::to_string(r.analysis_findings))
        .add(audit_col);
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: identical 'virtual total' across modes (the "
               "analyzer never touches simulated time), zero findings, a "
               "small constant-factor wall-clock cost for 'analyze', and "
               "roughly double that for the two-run audit.\n";
  return 0;
}
