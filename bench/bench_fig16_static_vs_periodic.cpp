// Figure 16: total execution time for 2000 iterations on 32 nodes —
// static (never redistribute) vs periodic redistribution with periods
// 200, 100, 50, 25, 10, 5, for three (mesh, particles) pairs with the
// irregular (center-concentrated) distribution.
//
// Expected shape: every periodic variant beats static; the best period is
// in the middle of the range (too rare = drift accumulates, too frequent =
// redistribution cost dominates).
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig16_static_vs_periodic",
          "Figure 16: static vs periodic redistribution, 32 nodes");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto sf = bench::sweep_flags(cli);
  const auto scale = bench::parse_scale(cli, argc, argv);
  // This is the heaviest sweep (21 full simulations); the reduced scale
  // cuts deeper than the default 1/5 so the whole suite stays fast.
  const int iters = scale.full ? 2000 : 250;

  bench::print_header(
      "Figure 16 — total execution time, " + std::to_string(iters) +
          " iterations, " + std::to_string(*ranks) + " nodes",
      "irregular distribution; modeled CM-5 seconds");

  struct Pair {
    std::uint32_t nx, ny;
    std::uint64_t n;
  };
  const Pair pairs[] = {{128, 64, 32768}, {256, 128, 65536}, {256, 128, 131072}};
  const int periods[] = {200, 100, 50, 25, 10, 5};

  Table table({"mesh", "particles", "policy", "total time (s)",
               "redistributions", "overhead (s)"});
  table.set_title("Fig 16: static vs periodic redistribution");

  // Expand the (pair x policy) grid into sweep jobs, remembering the group
  // boundaries so the progress dots keep their one-line-per-pair shape.
  struct Row {
    std::string mesh;
    std::uint64_t n;
    std::string policy;
  };
  std::vector<Row> rows;
  std::vector<sweep::Job> jobs;
  std::vector<std::size_t> group_sizes;
  for (const auto& pr : pairs) {
    const auto n = scale.particles(pr.n);
    std::vector<std::string> policies{"static"};
    int last_kk = 0;
    for (int k : periods) {
      const int kk = scale.full ? k : std::max(2, k / 8);
      if (kk == last_kk) continue;  // reduced scale can collapse periods
      last_kk = kk;
      policies.push_back("periodic:" + std::to_string(kk));
    }
    group_sizes.push_back(policies.size());
    for (const auto& policy : policies) {
      auto params = bench::paper_params("irregular", pr.nx, pr.ny, n, *ranks);
      params.iterations = iters;
      params.policy = policy;
      const std::string mesh_label =
          std::to_string(pr.nx) + "x" + std::to_string(pr.ny);
      rows.push_back({mesh_label, n, policy});
      jobs.push_back({mesh_label + "/p" + std::to_string(n) + "/" + policy,
                      params});
    }
  }

  const auto report = bench::run_sweep_jobs(jobs, sf);

  std::size_t idx = 0;
  for (const std::size_t gsz : group_sizes) {
    for (std::size_t g = 0; g < gsz; ++g, ++idx) {
      const auto& r = report.outcomes[idx].result;
      table.row()
          .add(rows[idx].mesh)
          .add(static_cast<std::size_t>(rows[idx].n))
          .add(rows[idx].policy)
          .add(r.total_seconds, 2)
          .add(static_cast<long long>(r.redistributions))
          .add(r.overhead_seconds(), 2);
      std::cout << "." << std::flush;
    }
    std::cout << '\n';
  }
  table.print(std::cout);
  std::cout << "\nExpected: periodic < static for every pair; best period "
               "mid-range.\n";
  return 0;
}
