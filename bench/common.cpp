#include "common.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "sweep/pool.hpp"

namespace picpar::bench {

Scale parse_scale(picpar::Cli& cli, int argc, const char* const* argv) {
  auto full = cli.flag<bool>("full", false,
                             "run the paper's exact scale (slower)");
  cli.parse(argc, argv);
  Scale s;
  s.full = *full;
  return s;
}

pic::PicParams paper_params(const std::string& dist, std::uint32_t nx,
                            std::uint32_t ny, std::uint64_t particles,
                            int nranks) {
  pic::PicParams p;
  p.grid = mesh::GridDesc(nx, ny);
  p.nranks = nranks;
  p.dist = particles::parse_distribution(dist);
  p.init.total = particles;
  p.init.vth = 0.05;
  // A coherent drift (~0.14c) makes the Lagrangian particle subdomains
  // wander off their mesh subdomains over hundreds of iterations — the
  // dynamic effect Figs 16-20 study.
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.curve = sfc::CurveKind::kHilbert;
  p.grid_decomp = pic::GridDecomp::kCurve;
  p.solver = pic::FieldSolveKind::kMaxwell;
  p.machine = sim::CostModel::cm5();
  p.policy = "sar";
  return p;
}

void print_header(const std::string& experiment, const std::string& note) {
  std::cout << "#\n# " << experiment << "\n# " << note << "\n#\n";
}

void run_jobs(int jobs, std::vector<std::function<std::string()>> tasks) {
  std::vector<std::string> out(tasks.size());
  sweep::run_indexed(jobs, tasks.size(),
                     [&](std::size_t i) { out[i] = tasks[i](); });
  for (const auto& s : out) std::cout << s;
}

SweepFlags sweep_flags(picpar::Cli& cli) {
  const char* env = std::getenv("PICPAR_SWEEP_CACHE");
  SweepFlags f;
  f.jobs = cli.flag<int>("jobs", 1,
                         "sweep worker threads for cache misses (0 = cores)");
  f.cache = cli.flag<std::string>(
      "cache", env ? env : "",
      "result cache directory (default $PICPAR_SWEEP_CACHE; \"\" = off)");
  return f;
}

sweep::SweepReport run_sweep_jobs(const std::vector<sweep::Job>& jobs,
                                  const SweepFlags& flags) {
  sweep::SweepOptions opt;
  opt.jobs = *flags.jobs;
  opt.cache_dir = *flags.cache;
  auto report = sweep::run_sweep(jobs, opt);
  if (!opt.cache_dir.empty()) {
    const auto& s = report.stats;
    std::cout << "# sweep: " << s.jobs << " jobs, " << s.unique
              << " unique, " << s.hits << " cache hits, " << s.simulated
              << " simulated\n";
  }
  return report;
}

std::string fmt_s(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << seconds;
  return os.str();
}

}  // namespace picpar::bench
