#include "common.hpp"

#include <atomic>
#include <iomanip>
#include <sstream>
#include <thread>

namespace picpar::bench {

Scale parse_scale(picpar::Cli& cli, int argc, const char* const* argv) {
  auto full = cli.flag<bool>("full", false,
                             "run the paper's exact scale (slower)");
  cli.parse(argc, argv);
  Scale s;
  s.full = *full;
  return s;
}

pic::PicParams paper_params(const std::string& dist, std::uint32_t nx,
                            std::uint32_t ny, std::uint64_t particles,
                            int nranks) {
  pic::PicParams p;
  p.grid = mesh::GridDesc(nx, ny);
  p.nranks = nranks;
  p.dist = particles::parse_distribution(dist);
  p.init.total = particles;
  p.init.vth = 0.05;
  // A coherent drift (~0.14c) makes the Lagrangian particle subdomains
  // wander off their mesh subdomains over hundreds of iterations — the
  // dynamic effect Figs 16-20 study.
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.curve = sfc::CurveKind::kHilbert;
  p.grid_decomp = pic::GridDecomp::kCurve;
  p.solver = pic::FieldSolveKind::kMaxwell;
  p.machine = sim::CostModel::cm5();
  p.policy = "sar";
  return p;
}

void print_header(const std::string& experiment, const std::string& note) {
  std::cout << "#\n# " << experiment << "\n# " << note << "\n#\n";
}

void run_jobs(int jobs, std::vector<std::function<std::string()>> tasks) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  jobs = std::min<int>(jobs, static_cast<int>(tasks.size()));
  std::vector<std::string> out(tasks.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) out[i] = tasks[i]();
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w)
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= tasks.size()) return;
          out[i] = tasks[i]();
        }
      });
    for (auto& t : pool) t.join();
  }
  for (const auto& s : out) std::cout << s;
}

std::string fmt_s(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << seconds;
  return os.str();
}

}  // namespace picpar::bench
