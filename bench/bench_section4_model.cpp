// Section 4 validation: compare the paper's closed-form per-iteration
// bounds against the simulated machine's measured iteration times.
//
// Expected: measured aligned iterations (right after a redistribution)
// land between the aligned estimate and the worst-case upper bound; the
// static policy's late iterations approach (but never exceed) the bound.
#include "common.hpp"

#include "pic/model.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_section4_model",
          "Section 4: analytic phase bounds vs simulation");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.full ? 600 : 200;

  bench::print_header("Section 4 — analytic model vs simulated machine",
                      "irregular, mesh=128x64, particles=32768, p=" +
                          std::to_string(*ranks));

  auto params = bench::paper_params("irregular", 128, 64,
                                    scale.particles(32768), *ranks);
  params.iterations = iters;

  const auto in = pic::model_inputs(params);
  const auto bound = pic::phase_bounds(in);
  const auto aligned = pic::aligned_phase_estimate(in);

  Table model({"phase", "aligned estimate (s)", "worst-case bound (s)"});
  model.set_title("Analytic per-iteration model");
  model.row().add("scatter").add(aligned.scatter, 4).add(bound.scatter, 4);
  model.row().add("field solve").add(aligned.field_solve, 4).add(bound.field_solve, 4);
  model.row().add("gather").add(aligned.gather, 4).add(bound.gather, 4);
  model.row().add("push").add(aligned.push, 4).add(bound.push, 4);
  model.row().add("iteration").add(aligned.iteration(), 4).add(bound.iteration(), 4);
  model.print(std::cout);

  Table meas({"policy", "first iter (s)", "median iter (s)", "last iter (s)",
              "within bound"});
  meas.set_title("Measured per-iteration times");
  for (const std::string& policy : {std::string("sar"), std::string("static")}) {
    auto p = params;
    p.policy = policy;
    const auto r = pic::run_pic(p);
    std::vector<double> times;
    for (const auto& it : r.iters)
      if (!it.redistributed) times.push_back(it.exec_seconds);
    std::sort(times.begin(), times.end());
    const double first = r.iters.front().exec_seconds;
    const double median = times[times.size() / 2];
    const double last = times.back();
    meas.row()
        .add(policy)
        .add(first, 4)
        .add(median, 4)
        .add(last, 4)
        .add(last <= bound.iteration() * 1.05 ? "yes" : "NO");
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  meas.print(std::cout);
  std::cout << "\nExpected: aligned estimate <= measured <= worst-case bound "
               "(the bound assumes every rank talks to all p-1 others).\n";
  return 0;
}
