// Figure 20: periodic vs dynamic (SAR) redistribution over 200 iterations
// on 32 nodes. The dynamic policy uses only runtime information — cost of
// the last redistribution and the rise in iteration time — yet should land
// close to the best periodic setting without any tuning.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig20_periodic_vs_dynamic",
          "Figure 20: periodic vs dynamic (SAR) redistribution");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = 200;  // the paper's Fig 20 run is short; keep it exact

  bench::print_header("Figure 20 — periodic vs dynamic, " +
                          std::to_string(iters) + " iterations",
                      "irregular, mesh=128x64, particles=32768, p=" +
                          std::to_string(*ranks));

  const std::uint64_t n = scale.particles(32768);
  Table table({"policy", "total (s)", "exec (s)", "redist (s)",
               "redistributions"});
  table.set_title("Fig 20: 200-iteration totals");

  std::vector<std::string> policies{"static"};
  for (int k : {100, 50, 25, 10, 5})
    policies.push_back("periodic:" + std::to_string(k));
  policies.push_back("sar");

  double best_periodic = 1e300;
  double sar_total = 0.0;
  for (const auto& policy : policies) {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    params.policy = policy;
    const auto r = pic::run_pic(params);
    table.row()
        .add(policy)
        .add(r.total_seconds, 2)
        .add(r.total_seconds - r.redist_seconds_total, 2)
        .add(r.redist_seconds_total, 2)
        .add(static_cast<long long>(r.redistributions));
    if (policy.rfind("periodic", 0) == 0)
      best_periodic = std::min(best_periodic, r.total_seconds);
    if (policy == "sar") sar_total = r.total_seconds;
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nDynamic (sar) vs best periodic: " << bench::fmt_s(sar_total)
            << " vs " << bench::fmt_s(best_periodic) << " s ("
            << bench::fmt_s(100.0 * (sar_total - best_periodic) /
                            best_periodic)
            << "% difference)\n"
            << "Expected: sar within a few percent of the best period, "
               "with no tuning.\n";
  return 0;
}
