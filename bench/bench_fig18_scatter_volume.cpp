// Figure 18: maximum amount of data sent and received by any processor in
// the scatter phase, per iteration (irregular, 128x64, 32768 particles,
// 32 processors).
//
// Expected shape: static grows steadily; redistribution policies keep the
// maxima bounded with saw-tooth resets.
#include "common.hpp"
#include "pic/simulation.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("bench_fig18_scatter_volume",
          "Figure 18: max scatter-phase bytes sent/received per iteration");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto stride = cli.flag<int>("stride", 10, "print every k-th iteration");
  const auto scale = bench::parse_scale(cli, argc, argv);
  const int iters = scale.iters(2000);

  bench::print_header("Figure 18 — max scatter data volume",
                      "irregular, mesh=128x64, particles=32768, p=" +
                          std::to_string(*ranks));

  const std::uint64_t n = scale.particles(32768);
  for (const std::string& policy :
       {std::string("static"),
        "periodic:" + std::to_string(scale.full ? 50 : 10)}) {
    auto params = bench::paper_params("irregular", 128, 64, n, *ranks);
    params.iterations = iters;
    params.policy = policy;
    const auto r = pic::run_pic(params);

    std::vector<double> x, sent, recv;
    for (int i = 0; i < iters; i += *stride) {
      const auto& it = r.iters[static_cast<std::size_t>(i)];
      x.push_back(i);
      sent.push_back(static_cast<double>(it.scatter_max_sent_bytes));
      recv.push_back(static_cast<double>(it.scatter_max_recv_bytes));
    }
    print_series(std::cout, "max_sent_bytes[" + policy + "]", x, sent);
    print_series(std::cout, "max_recv_bytes[" + policy + "]", x, recv);
    std::cout << '\n';
  }
  std::cout << "Expected: static volumes grow; periodic stays bounded.\n";
  return 0;
}
