file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_local_grid.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_local_grid.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_partition.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_partition.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_solvers.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_solvers.cpp.o.d"
  "test_mesh"
  "test_mesh.pdb"
  "test_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
