
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh/test_grid.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o.d"
  "/root/repo/tests/mesh/test_local_grid.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_local_grid.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_local_grid.cpp.o.d"
  "/root/repo/tests/mesh/test_partition.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_partition.cpp.o.d"
  "/root/repo/tests/mesh/test_solvers.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_solvers.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/picpar_particles.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/picpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/picpar_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
