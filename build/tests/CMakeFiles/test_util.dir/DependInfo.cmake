
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_cli.cpp" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o.d"
  "/root/repo/tests/util/test_report.cpp" "tests/CMakeFiles/test_util.dir/util/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_report.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/picpar_particles.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/picpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/picpar_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
