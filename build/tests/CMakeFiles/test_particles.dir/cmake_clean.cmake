file(REMOVE_RECURSE
  "CMakeFiles/test_particles.dir/particles/test_init.cpp.o"
  "CMakeFiles/test_particles.dir/particles/test_init.cpp.o.d"
  "CMakeFiles/test_particles.dir/particles/test_io.cpp.o"
  "CMakeFiles/test_particles.dir/particles/test_io.cpp.o.d"
  "CMakeFiles/test_particles.dir/particles/test_particle_array.cpp.o"
  "CMakeFiles/test_particles.dir/particles/test_particle_array.cpp.o.d"
  "CMakeFiles/test_particles.dir/particles/test_pusher.cpp.o"
  "CMakeFiles/test_particles.dir/particles/test_pusher.cpp.o.d"
  "test_particles"
  "test_particles.pdb"
  "test_particles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
