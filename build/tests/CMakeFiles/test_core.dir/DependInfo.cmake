
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_equivalence.cpp" "tests/CMakeFiles/test_core.dir/core/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_equivalence.cpp.o.d"
  "/root/repo/tests/core/test_ghost_exchange.cpp" "tests/CMakeFiles/test_core.dir/core/test_ghost_exchange.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ghost_exchange.cpp.o.d"
  "/root/repo/tests/core/test_indexing.cpp" "tests/CMakeFiles/test_core.dir/core/test_indexing.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_indexing.cpp.o.d"
  "/root/repo/tests/core/test_load_balance.cpp" "tests/CMakeFiles/test_core.dir/core/test_load_balance.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_load_balance.cpp.o.d"
  "/root/repo/tests/core/test_partitioner.cpp" "tests/CMakeFiles/test_core.dir/core/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_partitioner.cpp.o.d"
  "/root/repo/tests/core/test_policy.cpp" "tests/CMakeFiles/test_core.dir/core/test_policy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policy.cpp.o.d"
  "/root/repo/tests/core/test_sort_util.cpp" "tests/CMakeFiles/test_core.dir/core/test_sort_util.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sort_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/picpar_particles.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/picpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/picpar_pic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
