file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_equivalence.cpp.o"
  "CMakeFiles/test_core.dir/core/test_equivalence.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ghost_exchange.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ghost_exchange.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_indexing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_indexing.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_load_balance.cpp.o"
  "CMakeFiles/test_core.dir/core/test_load_balance.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_partitioner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_partitioner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sort_util.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sort_util.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
