file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_clocks.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_clocks.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_fuzz.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_fuzz.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pointtopoint.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_pointtopoint.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
