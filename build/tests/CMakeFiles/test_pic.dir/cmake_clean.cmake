file(REMOVE_RECURSE
  "CMakeFiles/test_pic.dir/pic/test_baselines.cpp.o"
  "CMakeFiles/test_pic.dir/pic/test_baselines.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/test_model.cpp.o"
  "CMakeFiles/test_pic.dir/pic/test_model.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/test_physics.cpp.o"
  "CMakeFiles/test_pic.dir/pic/test_physics.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/test_sampling.cpp.o"
  "CMakeFiles/test_pic.dir/pic/test_sampling.cpp.o.d"
  "CMakeFiles/test_pic.dir/pic/test_simulation.cpp.o"
  "CMakeFiles/test_pic.dir/pic/test_simulation.cpp.o.d"
  "test_pic"
  "test_pic.pdb"
  "test_pic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
