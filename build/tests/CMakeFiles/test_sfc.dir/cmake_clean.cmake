file(REMOVE_RECURSE
  "CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_locality.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_locality.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_simple_curves.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_simple_curves.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_skilling.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_skilling.cpp.o.d"
  "test_sfc"
  "test_sfc.pdb"
  "test_sfc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
