file(REMOVE_RECURSE
  "CMakeFiles/hilbert3d_cloud.dir/hilbert3d_cloud.cpp.o"
  "CMakeFiles/hilbert3d_cloud.dir/hilbert3d_cloud.cpp.o.d"
  "hilbert3d_cloud"
  "hilbert3d_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilbert3d_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
