# Empty compiler generated dependencies file for hilbert3d_cloud.
# This may be replaced when dependencies are built.
