# Empty dependencies file for irregular_beam.
# This may be replaced when dependencies are built.
