file(REMOVE_RECURSE
  "CMakeFiles/irregular_beam.dir/irregular_beam.cpp.o"
  "CMakeFiles/irregular_beam.dir/irregular_beam.cpp.o.d"
  "irregular_beam"
  "irregular_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
