# Empty dependencies file for curve_playground.
# This may be replaced when dependencies are built.
