file(REMOVE_RECURSE
  "CMakeFiles/curve_playground.dir/curve_playground.cpp.o"
  "CMakeFiles/curve_playground.dir/curve_playground.cpp.o.d"
  "curve_playground"
  "curve_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
