file(REMOVE_RECURSE
  "libpicpar_particles.a"
)
