# Empty dependencies file for picpar_particles.
# This may be replaced when dependencies are built.
