
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/particles/init.cpp" "src/particles/CMakeFiles/picpar_particles.dir/init.cpp.o" "gcc" "src/particles/CMakeFiles/picpar_particles.dir/init.cpp.o.d"
  "/root/repo/src/particles/io.cpp" "src/particles/CMakeFiles/picpar_particles.dir/io.cpp.o" "gcc" "src/particles/CMakeFiles/picpar_particles.dir/io.cpp.o.d"
  "/root/repo/src/particles/particle_array.cpp" "src/particles/CMakeFiles/picpar_particles.dir/particle_array.cpp.o" "gcc" "src/particles/CMakeFiles/picpar_particles.dir/particle_array.cpp.o.d"
  "/root/repo/src/particles/pusher.cpp" "src/particles/CMakeFiles/picpar_particles.dir/pusher.cpp.o" "gcc" "src/particles/CMakeFiles/picpar_particles.dir/pusher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
