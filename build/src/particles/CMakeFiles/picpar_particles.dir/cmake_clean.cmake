file(REMOVE_RECURSE
  "CMakeFiles/picpar_particles.dir/init.cpp.o"
  "CMakeFiles/picpar_particles.dir/init.cpp.o.d"
  "CMakeFiles/picpar_particles.dir/io.cpp.o"
  "CMakeFiles/picpar_particles.dir/io.cpp.o.d"
  "CMakeFiles/picpar_particles.dir/particle_array.cpp.o"
  "CMakeFiles/picpar_particles.dir/particle_array.cpp.o.d"
  "CMakeFiles/picpar_particles.dir/pusher.cpp.o"
  "CMakeFiles/picpar_particles.dir/pusher.cpp.o.d"
  "libpicpar_particles.a"
  "libpicpar_particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
