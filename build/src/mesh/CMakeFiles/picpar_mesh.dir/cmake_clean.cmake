file(REMOVE_RECURSE
  "CMakeFiles/picpar_mesh.dir/local_grid.cpp.o"
  "CMakeFiles/picpar_mesh.dir/local_grid.cpp.o.d"
  "CMakeFiles/picpar_mesh.dir/maxwell.cpp.o"
  "CMakeFiles/picpar_mesh.dir/maxwell.cpp.o.d"
  "CMakeFiles/picpar_mesh.dir/partition.cpp.o"
  "CMakeFiles/picpar_mesh.dir/partition.cpp.o.d"
  "CMakeFiles/picpar_mesh.dir/poisson.cpp.o"
  "CMakeFiles/picpar_mesh.dir/poisson.cpp.o.d"
  "libpicpar_mesh.a"
  "libpicpar_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
