# Empty dependencies file for picpar_mesh.
# This may be replaced when dependencies are built.
