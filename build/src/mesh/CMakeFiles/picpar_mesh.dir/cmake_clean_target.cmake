file(REMOVE_RECURSE
  "libpicpar_mesh.a"
)
