
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/local_grid.cpp" "src/mesh/CMakeFiles/picpar_mesh.dir/local_grid.cpp.o" "gcc" "src/mesh/CMakeFiles/picpar_mesh.dir/local_grid.cpp.o.d"
  "/root/repo/src/mesh/maxwell.cpp" "src/mesh/CMakeFiles/picpar_mesh.dir/maxwell.cpp.o" "gcc" "src/mesh/CMakeFiles/picpar_mesh.dir/maxwell.cpp.o.d"
  "/root/repo/src/mesh/partition.cpp" "src/mesh/CMakeFiles/picpar_mesh.dir/partition.cpp.o" "gcc" "src/mesh/CMakeFiles/picpar_mesh.dir/partition.cpp.o.d"
  "/root/repo/src/mesh/poisson.cpp" "src/mesh/CMakeFiles/picpar_mesh.dir/poisson.cpp.o" "gcc" "src/mesh/CMakeFiles/picpar_mesh.dir/poisson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
