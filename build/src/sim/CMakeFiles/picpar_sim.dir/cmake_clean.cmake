file(REMOVE_RECURSE
  "CMakeFiles/picpar_sim.dir/comm.cpp.o"
  "CMakeFiles/picpar_sim.dir/comm.cpp.o.d"
  "CMakeFiles/picpar_sim.dir/comm_stats.cpp.o"
  "CMakeFiles/picpar_sim.dir/comm_stats.cpp.o.d"
  "CMakeFiles/picpar_sim.dir/machine.cpp.o"
  "CMakeFiles/picpar_sim.dir/machine.cpp.o.d"
  "libpicpar_sim.a"
  "libpicpar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
