file(REMOVE_RECURSE
  "libpicpar_sim.a"
)
