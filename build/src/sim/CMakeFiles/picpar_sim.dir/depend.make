# Empty dependencies file for picpar_sim.
# This may be replaced when dependencies are built.
