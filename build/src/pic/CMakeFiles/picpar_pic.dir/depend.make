# Empty dependencies file for picpar_pic.
# This may be replaced when dependencies are built.
