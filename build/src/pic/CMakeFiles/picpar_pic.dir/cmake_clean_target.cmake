file(REMOVE_RECURSE
  "libpicpar_pic.a"
)
