file(REMOVE_RECURSE
  "CMakeFiles/picpar_pic.dir/eulerian.cpp.o"
  "CMakeFiles/picpar_pic.dir/eulerian.cpp.o.d"
  "CMakeFiles/picpar_pic.dir/model.cpp.o"
  "CMakeFiles/picpar_pic.dir/model.cpp.o.d"
  "CMakeFiles/picpar_pic.dir/replicated.cpp.o"
  "CMakeFiles/picpar_pic.dir/replicated.cpp.o.d"
  "CMakeFiles/picpar_pic.dir/simulation.cpp.o"
  "CMakeFiles/picpar_pic.dir/simulation.cpp.o.d"
  "libpicpar_pic.a"
  "libpicpar_pic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_pic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
