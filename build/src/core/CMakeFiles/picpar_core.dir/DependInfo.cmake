
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ghost_exchange.cpp" "src/core/CMakeFiles/picpar_core.dir/ghost_exchange.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/ghost_exchange.cpp.o.d"
  "/root/repo/src/core/indexing.cpp" "src/core/CMakeFiles/picpar_core.dir/indexing.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/indexing.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/core/CMakeFiles/picpar_core.dir/load_balance.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/load_balance.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/picpar_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/picpar_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/sort_util.cpp" "src/core/CMakeFiles/picpar_core.dir/sort_util.cpp.o" "gcc" "src/core/CMakeFiles/picpar_core.dir/sort_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/picpar_particles.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
