# Empty dependencies file for picpar_core.
# This may be replaced when dependencies are built.
