file(REMOVE_RECURSE
  "CMakeFiles/picpar_core.dir/ghost_exchange.cpp.o"
  "CMakeFiles/picpar_core.dir/ghost_exchange.cpp.o.d"
  "CMakeFiles/picpar_core.dir/indexing.cpp.o"
  "CMakeFiles/picpar_core.dir/indexing.cpp.o.d"
  "CMakeFiles/picpar_core.dir/load_balance.cpp.o"
  "CMakeFiles/picpar_core.dir/load_balance.cpp.o.d"
  "CMakeFiles/picpar_core.dir/partitioner.cpp.o"
  "CMakeFiles/picpar_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/picpar_core.dir/policy.cpp.o"
  "CMakeFiles/picpar_core.dir/policy.cpp.o.d"
  "CMakeFiles/picpar_core.dir/sort_util.cpp.o"
  "CMakeFiles/picpar_core.dir/sort_util.cpp.o.d"
  "libpicpar_core.a"
  "libpicpar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
