file(REMOVE_RECURSE
  "libpicpar_core.a"
)
