file(REMOVE_RECURSE
  "CMakeFiles/picpar_util.dir/cli.cpp.o"
  "CMakeFiles/picpar_util.dir/cli.cpp.o.d"
  "CMakeFiles/picpar_util.dir/log.cpp.o"
  "CMakeFiles/picpar_util.dir/log.cpp.o.d"
  "CMakeFiles/picpar_util.dir/report.cpp.o"
  "CMakeFiles/picpar_util.dir/report.cpp.o.d"
  "CMakeFiles/picpar_util.dir/rng.cpp.o"
  "CMakeFiles/picpar_util.dir/rng.cpp.o.d"
  "CMakeFiles/picpar_util.dir/stats.cpp.o"
  "CMakeFiles/picpar_util.dir/stats.cpp.o.d"
  "CMakeFiles/picpar_util.dir/table.cpp.o"
  "CMakeFiles/picpar_util.dir/table.cpp.o.d"
  "libpicpar_util.a"
  "libpicpar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
