# Empty dependencies file for picpar_util.
# This may be replaced when dependencies are built.
