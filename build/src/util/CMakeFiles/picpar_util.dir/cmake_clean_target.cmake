file(REMOVE_RECURSE
  "libpicpar_util.a"
)
