
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/factory.cpp" "src/sfc/CMakeFiles/picpar_sfc.dir/factory.cpp.o" "gcc" "src/sfc/CMakeFiles/picpar_sfc.dir/factory.cpp.o.d"
  "/root/repo/src/sfc/hilbert.cpp" "src/sfc/CMakeFiles/picpar_sfc.dir/hilbert.cpp.o" "gcc" "src/sfc/CMakeFiles/picpar_sfc.dir/hilbert.cpp.o.d"
  "/root/repo/src/sfc/locality.cpp" "src/sfc/CMakeFiles/picpar_sfc.dir/locality.cpp.o" "gcc" "src/sfc/CMakeFiles/picpar_sfc.dir/locality.cpp.o.d"
  "/root/repo/src/sfc/simple_curves.cpp" "src/sfc/CMakeFiles/picpar_sfc.dir/simple_curves.cpp.o" "gcc" "src/sfc/CMakeFiles/picpar_sfc.dir/simple_curves.cpp.o.d"
  "/root/repo/src/sfc/skilling.cpp" "src/sfc/CMakeFiles/picpar_sfc.dir/skilling.cpp.o" "gcc" "src/sfc/CMakeFiles/picpar_sfc.dir/skilling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
