# Empty compiler generated dependencies file for picpar_sfc.
# This may be replaced when dependencies are built.
