file(REMOVE_RECURSE
  "libpicpar_sfc.a"
)
