file(REMOVE_RECURSE
  "CMakeFiles/picpar_sfc.dir/factory.cpp.o"
  "CMakeFiles/picpar_sfc.dir/factory.cpp.o.d"
  "CMakeFiles/picpar_sfc.dir/hilbert.cpp.o"
  "CMakeFiles/picpar_sfc.dir/hilbert.cpp.o.d"
  "CMakeFiles/picpar_sfc.dir/locality.cpp.o"
  "CMakeFiles/picpar_sfc.dir/locality.cpp.o.d"
  "CMakeFiles/picpar_sfc.dir/simple_curves.cpp.o"
  "CMakeFiles/picpar_sfc.dir/simple_curves.cpp.o.d"
  "CMakeFiles/picpar_sfc.dir/skilling.cpp.o"
  "CMakeFiles/picpar_sfc.dir/skilling.cpp.o.d"
  "libpicpar_sfc.a"
  "libpicpar_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picpar_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
