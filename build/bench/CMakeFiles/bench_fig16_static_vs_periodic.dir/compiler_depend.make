# Empty compiler generated dependencies file for bench_fig16_static_vs_periodic.
# This may be replaced when dependencies are built.
