file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_static_vs_periodic.dir/bench_fig16_static_vs_periodic.cpp.o"
  "CMakeFiles/bench_fig16_static_vs_periodic.dir/bench_fig16_static_vs_periodic.cpp.o.d"
  "bench_fig16_static_vs_periodic"
  "bench_fig16_static_vs_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_static_vs_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
