file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sfc.dir/bench_micro_sfc.cpp.o"
  "CMakeFiles/bench_micro_sfc.dir/bench_micro_sfc.cpp.o.d"
  "bench_micro_sfc"
  "bench_micro_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
