# Empty dependencies file for bench_micro_sort.
# This may be replaced when dependencies are built.
