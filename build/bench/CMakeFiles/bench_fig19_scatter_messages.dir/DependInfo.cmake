
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_scatter_messages.cpp" "bench/CMakeFiles/bench_fig19_scatter_messages.dir/bench_fig19_scatter_messages.cpp.o" "gcc" "bench/CMakeFiles/bench_fig19_scatter_messages.dir/bench_fig19_scatter_messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pic/CMakeFiles/picpar_pic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/picpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/picpar_particles.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/picpar_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/picpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/picpar_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/picpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
