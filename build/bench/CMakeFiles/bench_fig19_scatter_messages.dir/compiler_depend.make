# Empty compiler generated dependencies file for bench_fig19_scatter_messages.
# This may be replaced when dependencies are built.
