# Empty dependencies file for bench_fig22_overhead_irregular.
# This may be replaced when dependencies are built.
