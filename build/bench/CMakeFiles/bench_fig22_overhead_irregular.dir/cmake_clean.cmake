file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_overhead_irregular.dir/bench_fig22_overhead_irregular.cpp.o"
  "CMakeFiles/bench_fig22_overhead_irregular.dir/bench_fig22_overhead_irregular.cpp.o.d"
  "bench_fig22_overhead_irregular"
  "bench_fig22_overhead_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_overhead_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
