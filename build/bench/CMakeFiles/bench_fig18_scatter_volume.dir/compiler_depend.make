# Empty compiler generated dependencies file for bench_fig18_scatter_volume.
# This may be replaced when dependencies are built.
