file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_scatter_volume.dir/bench_fig18_scatter_volume.cpp.o"
  "CMakeFiles/bench_fig18_scatter_volume.dir/bench_fig18_scatter_volume.cpp.o.d"
  "bench_fig18_scatter_volume"
  "bench_fig18_scatter_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_scatter_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
