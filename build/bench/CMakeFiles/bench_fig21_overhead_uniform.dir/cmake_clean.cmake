file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_overhead_uniform.dir/bench_fig21_overhead_uniform.cpp.o"
  "CMakeFiles/bench_fig21_overhead_uniform.dir/bench_fig21_overhead_uniform.cpp.o.d"
  "bench_fig21_overhead_uniform"
  "bench_fig21_overhead_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_overhead_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
