# Empty compiler generated dependencies file for bench_fig21_overhead_uniform.
# This may be replaced when dependencies are built.
