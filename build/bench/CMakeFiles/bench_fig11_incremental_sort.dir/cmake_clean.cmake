file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_incremental_sort.dir/bench_fig11_incremental_sort.cpp.o"
  "CMakeFiles/bench_fig11_incremental_sort.dir/bench_fig11_incremental_sort.cpp.o.d"
  "bench_fig11_incremental_sort"
  "bench_fig11_incremental_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_incremental_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
