# Empty compiler generated dependencies file for bench_fig11_incremental_sort.
# This may be replaced when dependencies are built.
