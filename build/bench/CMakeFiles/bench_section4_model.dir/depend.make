# Empty dependencies file for bench_section4_model.
# This may be replaced when dependencies are built.
