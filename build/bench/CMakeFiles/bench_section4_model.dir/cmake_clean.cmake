file(REMOVE_RECURSE
  "CMakeFiles/bench_section4_model.dir/bench_section4_model.cpp.o"
  "CMakeFiles/bench_section4_model.dir/bench_section4_model.cpp.o.d"
  "bench_section4_model"
  "bench_section4_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section4_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
