file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_periodic_vs_dynamic.dir/bench_fig20_periodic_vs_dynamic.cpp.o"
  "CMakeFiles/bench_fig20_periodic_vs_dynamic.dir/bench_fig20_periodic_vs_dynamic.cpp.o.d"
  "bench_fig20_periodic_vs_dynamic"
  "bench_fig20_periodic_vs_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_periodic_vs_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
