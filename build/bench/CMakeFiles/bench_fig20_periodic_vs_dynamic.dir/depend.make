# Empty dependencies file for bench_fig20_periodic_vs_dynamic.
# This may be replaced when dependencies are built.
