# Empty dependencies file for bench_fig17_iteration_trace.
# This may be replaced when dependencies are built.
