file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_iteration_trace.dir/bench_fig17_iteration_trace.cpp.o"
  "CMakeFiles/bench_fig17_iteration_trace.dir/bench_fig17_iteration_trace.cpp.o.d"
  "bench_fig17_iteration_trace"
  "bench_fig17_iteration_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_iteration_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
