file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hilbert_vs_snake.dir/bench_table2_hilbert_vs_snake.cpp.o"
  "CMakeFiles/bench_table2_hilbert_vs_snake.dir/bench_table2_hilbert_vs_snake.cpp.o.d"
  "bench_table2_hilbert_vs_snake"
  "bench_table2_hilbert_vs_snake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hilbert_vs_snake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
