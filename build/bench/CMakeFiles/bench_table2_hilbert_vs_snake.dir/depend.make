# Empty dependencies file for bench_table2_hilbert_vs_snake.
# This may be replaced when dependencies are built.
